package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestBlock1DCoverage(t *testing.T) {
	for _, tc := range [][2]int{{10, 3}, {7, 7}, {100, 64}, {5, 8}, {0, 2}, {1, 1}} {
		n, p := tc[0], tc[1]
		b := NewBlock1D(n, p)
		total := 0
		prevHi := 0
		for i := 0; i < p; i++ {
			if b.Lo(i) != prevHi {
				t.Fatalf("n=%d p=%d: block %d starts at %d, want %d", n, p, i, b.Lo(i), prevHi)
			}
			total += b.Size(i)
			prevHi = b.Hi(i)
		}
		if total != n || prevHi != n {
			t.Fatalf("n=%d p=%d: blocks cover %d items ending at %d", n, p, total, prevHi)
		}
	}
}

func TestBlock1DBalanced(t *testing.T) {
	b := NewBlock1D(10, 3)
	for i := 0; i < 3; i++ {
		if s := b.Size(i); s < 3 || s > 4 {
			t.Fatalf("block %d size %d not balanced", i, s)
		}
	}
}

func TestBlock1DOwnerConsistent(t *testing.T) {
	f := func(n16, p8 uint8) bool {
		n, p := int(n16)+1, int(p8%16)+1
		b := NewBlock1D(n, p)
		for idx := 0; idx < n; idx++ {
			o := b.Owner(idx)
			if idx < b.Lo(o) || idx >= b.Hi(o) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlock1DOwnerOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlock1D(5, 2).Owner(5)
}

func TestGrid2DRoundTrip(t *testing.T) {
	g := NewGrid2D(3, 4)
	if g.Size() != 12 {
		t.Fatalf("Size = %d", g.Size())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			r := g.Rank(i, j)
			gi, gj := g.Coords(r)
			if gi != i || gj != j {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", i, j, r, gi, gj)
			}
		}
	}
}

func TestNewSquareGrid(t *testing.T) {
	g := NewSquareGrid(16)
	if g.Pr != 4 || g.Pc != 4 {
		t.Fatalf("square grid = %dx%d", g.Pr, g.Pc)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square p")
		}
	}()
	NewSquareGrid(12)
}

func TestGridRowColRanks(t *testing.T) {
	g := NewGrid2D(2, 3)
	row1 := g.RowRanks(1)
	if len(row1) != 3 || row1[0] != 3 || row1[2] != 5 {
		t.Fatalf("RowRanks(1) = %v", row1)
	}
	col2 := g.ColRanks(2)
	if len(col2) != 2 || col2[0] != 2 || col2[1] != 5 {
		t.Fatalf("ColRanks(2) = %v", col2)
	}
}

func TestGrid3DRoundTrip(t *testing.T) {
	g := NewGrid3D(27)
	if g.C != 3 || g.Size() != 27 {
		t.Fatalf("grid3d C=%d size=%d", g.C, g.Size())
	}
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				r := g.Rank(i, j, k)
				if seen[r] {
					t.Fatalf("duplicate rank %d", r)
				}
				seen[r] = true
				gi, gj, gk := g.Coords(r)
				if gi != i || gj != j || gk != k {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", i, j, k, r, gi, gj, gk)
				}
			}
		}
	}
}

func TestGrid3DGroups(t *testing.T) {
	g := NewGrid3D(8)
	fiber := g.FiberRanks(1, 0)
	if len(fiber) != 2 {
		t.Fatalf("fiber = %v", fiber)
	}
	// All fiber members share (i, j).
	for k, r := range fiber {
		i, j, kk := g.Coords(r)
		if i != 1 || j != 0 || kk != k {
			t.Fatalf("fiber member %d has coords (%d,%d,%d)", r, i, j, kk)
		}
	}
	row := g.LayerRowRanks(0, 1)
	for j, r := range row {
		i, jj, k := g.Coords(r)
		if i != 0 || k != 1 || jj != j {
			t.Fatalf("layer row member %d has coords (%d,%d,%d)", r, i, jj, k)
		}
	}
	col := g.LayerColRanks(1, 1)
	for i, r := range col {
		ii, j, k := g.Coords(r)
		if j != 1 || k != 1 || ii != i {
			t.Fatalf("layer col member %d has coords (%d,%d,%d)", r, ii, j, k)
		}
	}
}

func TestPerfectPredicates(t *testing.T) {
	if !IsPerfectSquare(36) || IsPerfectSquare(35) {
		t.Fatal("IsPerfectSquare wrong")
	}
	if !IsPerfectCube(27) || IsPerfectCube(26) {
		t.Fatal("IsPerfectCube wrong")
	}
}

func TestBlockAssignment(t *testing.T) {
	a := BlockAssignment(10, 3)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := a.PartSizes()
	if sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Fatalf("sizes = %v", sizes)
	}
	// Consecutive blocks.
	if a.Parts[0] != 0 || a.Parts[9] != 2 {
		t.Fatalf("parts = %v", a.Parts)
	}
}

func TestRandomAssignmentBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomAssignment(100, 7, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if imb := a.Imbalance(); imb > 1.1 {
		t.Fatalf("random assignment imbalance = %v", imb)
	}
}

func TestGreedyBFSCoversAndBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Grid2D(20, 20)
	a := GreedyBFS(g, 8, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if imb := a.Imbalance(); imb > 1.3 {
		t.Fatalf("GreedyBFS imbalance = %v", imb)
	}
}

func TestLDGCoversAndBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Grid2D(15, 15)
	a := LDG(g, 5, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if imb := a.Imbalance(); imb > 1.3 {
		t.Fatalf("LDG imbalance = %v", imb)
	}
}

// TestGreedyBeatsRandomOnLattice reproduces the §IV-A-8 qualitative result:
// a locality-aware partitioner cuts total edgecut dramatically on a graph
// with structure, relative to random partitioning.
func TestGreedyBeatsRandomOnLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Grid2D(30, 30)
	random := Edgecut(g, RandomAssignment(g.NumVertices, 9, rng))
	greedy := Edgecut(g, GreedyBFS(g, 9, rng))
	if greedy.TotalCut >= random.TotalCut/2 {
		t.Fatalf("greedy cut %d should be far below random cut %d", greedy.TotalCut, random.TotalCut)
	}
}

// TestMaxVsTotalGapOnPowerLaw reproduces the paper's key observation: on
// scale-free graphs the *total* cut improves much more than the *max
// per-process* cut, so bulk-synchronous runtime barely benefits.
func TestMaxVsTotalGapOnPowerLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RMAT(11, 16, graph.DefaultRMAT, rng)
	p := 16
	random := Edgecut(g, RandomAssignment(g.NumVertices, p, rng))
	greedy := Edgecut(g, GreedyBFS(g, p, rng))
	totalReduction := 1 - float64(greedy.TotalCut)/float64(random.TotalCut)
	maxReduction := 1 - float64(greedy.MaxCut)/float64(random.MaxCut)
	if totalReduction <= 0 {
		t.Skip("greedy did not beat random on this instance; power-law graphs resist partitioning")
	}
	if maxReduction > totalReduction+0.05 {
		t.Fatalf("max-cut reduction (%.2f) should not exceed total-cut reduction (%.2f): imbalance dominates",
			maxReduction, totalReduction)
	}
}

func TestEdgecutSimple(t *testing.T) {
	// Two triangles joined by one edge, split perfectly in two parts.
	g := graph.New(6)
	g.AddUndirectedEdge(0, 1)
	g.AddUndirectedEdge(1, 2)
	g.AddUndirectedEdge(0, 2)
	g.AddUndirectedEdge(3, 4)
	g.AddUndirectedEdge(4, 5)
	g.AddUndirectedEdge(3, 5)
	g.AddUndirectedEdge(2, 3) // the only cut edge
	a := Assignment{Parts: []int{0, 0, 0, 1, 1, 1}, P: 2}
	st := Edgecut(g, a)
	if st.TotalCut != 2 { // (2,3) and (3,2)
		t.Fatalf("TotalCut = %d, want 2", st.TotalCut)
	}
	if st.MaxCut != 1 {
		t.Fatalf("MaxCut = %d, want 1", st.MaxCut)
	}
	if st.PerPartRecvRows[0] != 1 || st.PerPartRecvRows[1] != 1 {
		t.Fatalf("recv rows = %v", st.PerPartRecvRows)
	}
	if st.MaxRecvRows != 1 || st.TotalRecvRows != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEdgecutDistinctRows(t *testing.T) {
	// Vertex 0 (part 0) has two edges to vertex 3 (part 1) via different
	// sources; distinct-row counting must count vertex 3 once.
	g := graph.New(4)
	g.AddEdge(0, 3)
	g.AddEdge(1, 3)
	a := Assignment{Parts: []int{0, 0, 0, 1}, P: 2}
	st := Edgecut(g, a)
	if st.TotalCut != 2 {
		t.Fatalf("TotalCut = %d", st.TotalCut)
	}
	if st.PerPartRecvRows[0] != 1 {
		t.Fatalf("part 0 must need exactly 1 distinct row, got %d", st.PerPartRecvRows[0])
	}
}

func TestEdgecutRandomUpperBound(t *testing.T) {
	// §IV-A-1: a non-adversarial edgecut is never higher than n(P-1)/P.
	rng := rand.New(rand.NewSource(6))
	g := graph.ErdosRenyi(400, 12, rng)
	p := 8
	st := Edgecut(g, RandomAssignment(g.NumVertices, p, rng))
	bound := float64(g.NumVertices) * float64(p-1) / float64(p)
	if float64(st.MaxRecvRows) > bound {
		t.Fatalf("edgecut %d exceeds theoretical bound %.0f", st.MaxRecvRows, bound)
	}
}

func TestAssignmentValidate(t *testing.T) {
	a := Assignment{Parts: []int{0, 5}, P: 2}
	if err := a.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestEdgecutMismatchedSizesPanics(t *testing.T) {
	g := graph.Ring(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Edgecut(g, Assignment{Parts: []int{0}, P: 1})
}

func TestContig1DLayout(t *testing.T) {
	c := NewContig1D([]int{0, 3, 3, 10})
	if c.Blocks() != 3 || c.Items() != 10 {
		t.Fatalf("Blocks=%d Items=%d", c.Blocks(), c.Items())
	}
	if c.Lo(1) != 3 || c.Hi(1) != 3 || c.Size(1) != 0 {
		t.Fatal("empty middle block mishandled")
	}
	if c.Lo(2) != 3 || c.Hi(2) != 10 || c.Size(2) != 7 {
		t.Fatal("last block mishandled")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for decreasing offsets")
		}
	}()
	NewContig1D([]int{0, 5, 2})
}

func TestOffsets1D(t *testing.T) {
	b := NewBlock1D(10, 3)
	got := Offsets1D(b)
	want := []int{0, 3, 6, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offsets %v, want %v", got, want)
		}
	}
	c := NewContig1D([]int{0, 4, 9})
	got = Offsets1D(c)
	for i, w := range []int{0, 4, 9} {
		if got[i] != w {
			t.Fatalf("contig offsets %v", got)
		}
	}
}

// TestContigLayoutRelabeling: ContigLayout orders vertices by part with
// original order preserved within each part, and the layout sizes match
// the part sizes.
func TestContigLayoutRelabeling(t *testing.T) {
	a := Assignment{Parts: []int{2, 0, 1, 0, 2, 1, 0}, P: 3}
	layout, order := a.ContigLayout()
	wantOrder := []int{1, 3, 6, 2, 5, 0, 4}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("order %v, want %v", order, wantOrder)
		}
	}
	sizes := a.PartSizes()
	for i := 0; i < a.P; i++ {
		if layout.Size(i) != sizes[i] {
			t.Fatalf("layout block %d has %d items, part has %d", i, layout.Size(i), sizes[i])
		}
	}
	// Every relabeled vertex must land inside its part's block.
	for newIdx, oldIdx := range order {
		part := a.Parts[oldIdx]
		if newIdx < layout.Lo(part) || newIdx >= layout.Hi(part) {
			t.Fatalf("vertex %d (part %d) relabeled to %d outside [%d, %d)",
				oldIdx, part, newIdx, layout.Lo(part), layout.Hi(part))
		}
	}
}

func TestPartitionerByName(t *testing.T) {
	g := graph.Ring(12)
	rng := rand.New(rand.NewSource(3))
	for _, name := range Partitioners {
		fn, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := fn(g, 4, rng)
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.Parts) != 12 || a.P != 4 {
			t.Fatalf("%s produced %d parts over %d vertices", name, a.P, len(a.Parts))
		}
	}
	if _, err := ByName("metis"); err == nil {
		t.Fatal("expected error for unknown partitioner")
	}
}
