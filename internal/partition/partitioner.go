package partition

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Assignment maps each vertex to a part in [0, P).
type Assignment struct {
	Parts []int
	P     int
}

// Validate checks that every vertex has a part in range.
func (a Assignment) Validate() error {
	for v, p := range a.Parts {
		if p < 0 || p >= a.P {
			return fmt.Errorf("partition: vertex %d assigned to invalid part %d of %d", v, p, a.P)
		}
	}
	return nil
}

// PartSizes returns the number of vertices in each part.
func (a Assignment) PartSizes() []int {
	sizes := make([]int, a.P)
	for _, p := range a.Parts {
		sizes[p]++
	}
	return sizes
}

// Imbalance returns maxSize / idealSize, 1.0 meaning perfectly balanced.
func (a Assignment) Imbalance() float64 {
	sizes := a.PartSizes()
	mx := 0
	for _, s := range sizes {
		if s > mx {
			mx = s
		}
	}
	ideal := float64(len(a.Parts)) / float64(a.P)
	if ideal == 0 {
		return 1
	}
	return float64(mx) / ideal
}

// ContigLayout relabels the assignment's vertices so every part becomes a
// contiguous index block: vertices are ordered by part, original order
// preserved within each part. It returns the resulting layout and the
// relabeling order, order[new] = old. Callers apply order to the problem
// matrices (rows, labels, masks) before training with the layout.
func (a Assignment) ContigLayout() (Contig1D, []int) {
	sizes := a.PartSizes()
	offsets := make([]int, a.P+1)
	for i, s := range sizes {
		offsets[i+1] = offsets[i] + s
	}
	order := make([]int, len(a.Parts))
	next := append([]int(nil), offsets[:a.P]...)
	for old, p := range a.Parts {
		order[next[p]] = old
		next[p]++
	}
	return NewContig1D(offsets), order
}

// Partitioners lists the selectable 1D vertex partitioners in the order
// ByName accepts them.
var Partitioners = []string{"block", "random", "ldg"}

// ByName returns the named vertex partitioner: "block" (contiguous index
// blocks — the identity layout), "random" (balanced random assignment,
// the paper's random vertex partitioning), or "ldg" (Stanton–Kliot linear
// deterministic greedy streaming — the Metis stand-in of §IV-A-8).
func ByName(name string) (func(g *graph.Graph, p int, rng *rand.Rand) Assignment, error) {
	switch name {
	case "block":
		return func(g *graph.Graph, p int, _ *rand.Rand) Assignment {
			return BlockAssignment(g.NumVertices, p)
		}, nil
	case "random":
		return func(g *graph.Graph, p int, rng *rand.Rand) Assignment {
			return RandomAssignment(g.NumVertices, p, rng)
		}, nil
	case "ldg":
		return LDG, nil
	default:
		return nil, fmt.Errorf("partition: unknown partitioner %q (want block, random, ldg)", name)
	}
}

// BlockAssignment assigns vertices to parts in consecutive blocks — the
// paper's random 1D block-row distribution (after an optional random vertex
// permutation upstream).
func BlockAssignment(n, p int) Assignment {
	b := NewBlock1D(n, p)
	parts := make([]int, n)
	for i := 0; i < p; i++ {
		for v := b.Lo(i); v < b.Hi(i); v++ {
			parts[v] = i
		}
	}
	return Assignment{Parts: parts, P: p}
}

// RandomAssignment assigns each vertex to a uniformly random part, then
// rebalances to exact block sizes. It models "random vertex partitioning".
func RandomAssignment(n, p int, rng *rand.Rand) Assignment {
	perm := rng.Perm(n)
	b := NewBlock1D(n, p)
	parts := make([]int, n)
	for i := 0; i < p; i++ {
		for k := b.Lo(i); k < b.Hi(i); k++ {
			parts[perm[k]] = i
		}
	}
	return Assignment{Parts: parts, P: p}
}

// GreedyBFS is a Metis-stand-in partitioner: it grows parts one at a time
// by breadth-first search from unassigned seed vertices, capping each part
// at ⌈n/p⌉ vertices. On graphs with locality it produces much lower total
// edgecut than random partitioning, reproducing the qualitative §IV-A-8
// comparison.
func GreedyBFS(g *graph.Graph, p int, rng *rand.Rand) Assignment {
	n := g.NumVertices
	adj := buildAdj(g)
	parts := make([]int, n)
	for i := range parts {
		parts[i] = -1
	}
	cap1 := (n + p - 1) / p
	order := rng.Perm(n)
	next := 0 // cursor into order for seed selection
	queue := make([]int, 0, cap1)
	for part := 0; part < p; part++ {
		filled := 0
		budget := cap1
		if part == p-1 {
			budget = n // last part absorbs remainder
		}
		for filled < budget {
			// Find a seed among unassigned vertices.
			for next < n && parts[order[next]] != -1 {
				next++
			}
			if next >= n {
				break
			}
			seed := order[next]
			queue = append(queue[:0], seed)
			parts[seed] = part
			filled++
			for len(queue) > 0 && filled < budget {
				v := queue[0]
				queue = queue[1:]
				for _, u := range adj[v] {
					if parts[u] == -1 {
						parts[u] = part
						filled++
						queue = append(queue, u)
						if filled >= budget {
							break
						}
					}
				}
			}
		}
	}
	// Any stragglers (possible when budget math exhausts early parts) go to
	// the lightest part.
	sizes := make([]int, p)
	for _, pt := range parts {
		if pt >= 0 {
			sizes[pt]++
		}
	}
	for v := range parts {
		if parts[v] == -1 {
			best := 0
			for i := 1; i < p; i++ {
				if sizes[i] < sizes[best] {
					best = i
				}
			}
			parts[v] = best
			sizes[best]++
		}
	}
	return Assignment{Parts: parts, P: p}
}

// LDG is the linear deterministic greedy streaming partitioner (Stanton &
// Kliot): vertices arrive in random order and each goes to the part with
// the most already-assigned neighbors, weighted by remaining capacity.
func LDG(g *graph.Graph, p int, rng *rand.Rand) Assignment {
	n := g.NumVertices
	adj := buildAdj(g)
	parts := make([]int, n)
	for i := range parts {
		parts[i] = -1
	}
	capacity := float64(n)/float64(p) + 1
	sizes := make([]int, p)
	neighborCount := make([]int, p)
	for _, v := range rng.Perm(n) {
		for i := range neighborCount {
			neighborCount[i] = 0
		}
		for _, u := range adj[v] {
			if parts[u] >= 0 {
				neighborCount[parts[u]]++
			}
		}
		best, bestScore := 0, -1.0
		for i := 0; i < p; i++ {
			if float64(sizes[i]) >= capacity {
				continue
			}
			score := float64(neighborCount[i]) * (1 - float64(sizes[i])/capacity)
			if score > bestScore || (score == bestScore && sizes[i] < sizes[best]) {
				best, bestScore = i, score
			}
		}
		parts[v] = best
		sizes[best]++
	}
	return Assignment{Parts: parts, P: p}
}

func buildAdj(g *graph.Graph) [][]int {
	adj := make([][]int, g.NumVertices)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	return adj
}

// EdgecutStats reports the communication metrics of §IV-A for a vertex
// assignment.
type EdgecutStats struct {
	// TotalCut is the number of directed edges whose endpoints live in
	// different parts (the classic partitioning objective Metis minimizes).
	TotalCut int
	// MaxCut is the largest per-part count of cut edges incident to that
	// part's vertices — the quantity that actually bounds bulk-synchronous
	// runtime (§IV-A-8).
	MaxCut int
	// PerPartRecvRows[i] is r_i: the number of distinct remote vertices
	// whose feature rows part i must receive (the edgecut_P(A) building
	// block of §IV-A-1).
	PerPartRecvRows []int
	// MaxRecvRows is max_i r_i = edgecut_P(A).
	MaxRecvRows int
	// TotalRecvRows is Σ_i r_i.
	TotalRecvRows int
}

// Edgecut computes the §IV-A communication metrics of assignment a over g.
// An edge (u, v) with parts[u] = i, parts[v] = j ≠ i means part i must
// receive v's feature row.
func Edgecut(g *graph.Graph, a Assignment) EdgecutStats {
	if len(a.Parts) != g.NumVertices {
		panic(fmt.Sprintf("partition: assignment covers %d vertices, graph has %d", len(a.Parts), g.NumVertices))
	}
	stats := EdgecutStats{PerPartRecvRows: make([]int, a.P)}
	perPartCut := make([]int, a.P)
	seen := make(map[[2]int]struct{})
	for _, e := range g.Edges {
		pu, pv := a.Parts[e[0]], a.Parts[e[1]]
		if pu == pv {
			continue
		}
		stats.TotalCut++
		perPartCut[pu]++
		key := [2]int{pu, e[1]}
		if _, dup := seen[key]; !dup {
			seen[key] = struct{}{}
			stats.PerPartRecvRows[pu]++
		}
	}
	for _, c := range perPartCut {
		if c > stats.MaxCut {
			stats.MaxCut = c
		}
	}
	for _, r := range stats.PerPartRecvRows {
		stats.TotalRecvRows += r
		if r > stats.MaxRecvRows {
			stats.MaxRecvRows = r
		}
	}
	return stats
}
