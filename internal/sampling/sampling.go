// Package sampling implements neighborhood-explosion measurement and
// GraphSAGE-style neighbor sampling.
//
// The paper's introduction motivates full-batch distributed training with
// the neighborhood-explosion phenomenon: "after only a few layers, the
// chosen mini-batch ends up being dependent on the whole graph", which
// "completely nullifies the memory reduction goals" of mini-batching. Its
// conclusion proposes combining the distributed algorithms with
// "sophisticated sampling based methods" as future work. This package
// provides both halves: the measurement that reproduces the motivation,
// and the fan-out sampler that caps it.
package sampling

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// adjacencyList builds an undirected-view adjacency list: every stored
// edge contributes both endpoints' lists, deduplicated, so a directed
// input reaches the same neighborhoods as its symmetrized form. Dedup
// keeps the first occurrence, so graphs that already store both
// directions (the common case) keep their stored neighbor order exactly.
func adjacencyList(g *graph.Graph) [][]int {
	adj := make([][]int, g.NumVertices)
	for _, e := range g.Edges {
		u, v := e[0], e[1]
		adj[u] = append(adj[u], v)
		if u != v {
			adj[v] = append(adj[v], u)
		}
	}
	mark := make([]int, g.NumVertices)
	for i := range mark {
		mark[i] = -1
	}
	for v, nbrs := range adj {
		out := nbrs[:0]
		for _, u := range nbrs {
			if mark[u] != v {
				mark[u] = v
				out = append(out, u)
			}
		}
		adj[v] = out
	}
	return adj
}

// KHopFootprint returns, for each k in 0..hops, the number of distinct
// vertices reachable within k hops of the seed set — the memory footprint
// of an exact k-layer GNN mini-batch.
func KHopFootprint(g *graph.Graph, seeds []int, hops int) []int {
	adj := adjacencyList(g)
	visited := make([]bool, g.NumVertices)
	frontier := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || s >= g.NumVertices {
			panic(fmt.Sprintf("sampling: seed %d out of range", s))
		}
		if !visited[s] {
			visited[s] = true
			frontier = append(frontier, s)
		}
	}
	count := len(frontier)
	out := make([]int, hops+1)
	out[0] = count
	for k := 1; k <= hops; k++ {
		var next []int
		for _, v := range frontier {
			for _, u := range adj[v] {
				if !visited[u] {
					visited[u] = true
					next = append(next, u)
					count++
				}
			}
		}
		out[k] = count
		frontier = next
	}
	return out
}

// Fanouts gives the per-layer neighbor sample sizes, outermost layer
// first, as in GraphSAGE (Hamilton et al., the paper's [17]).
type Fanouts []int

// SampleSubgraph draws a fan-out-bounded computation subgraph for the
// seeds: layer k keeps at most fanouts[k] sampled neighbors per vertex.
// It returns the induced subgraph over the sampled vertex set, the mapping
// from new to original vertex ids, and a mask marking the seed vertices in
// the new numbering.
func SampleSubgraph(g *graph.Graph, seeds []int, fanouts Fanouts, rng *rand.Rand) (*graph.Graph, []int, []bool) {
	adj := adjacencyList(g)
	inSet := make(map[int]int, len(seeds)) // original id -> new id
	var order []int                        // new id -> original id
	add := func(v int) int {
		if id, ok := inSet[v]; ok {
			return id
		}
		id := len(order)
		inSet[v] = id
		order = append(order, v)
		return id
	}
	type edge struct{ u, v int }
	var edges []edge

	frontier := make([]int, 0, len(seeds))
	seen := make(map[int]bool, len(seeds))
	for _, s := range seeds {
		add(s)
		if !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}
	for _, fanout := range fanouts {
		var next []int
		for _, v := range frontier {
			nbrs := adj[v]
			k := fanout
			if k > len(nbrs) {
				k = len(nbrs)
			}
			// Partial Fisher-Yates over a copy for a uniform sample
			// without replacement.
			idx := rng.Perm(len(nbrs))[:k]
			for _, i := range idx {
				u := nbrs[i]
				uid := add(u)
				vid := inSet[v]
				edges = append(edges, edge{vid, uid}, edge{uid, vid})
				if !seen[u] {
					seen[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
	}

	sub := graph.New(len(order))
	for _, e := range edges {
		sub.AddEdge(e.u, e.v)
	}
	mask := make([]bool, len(order))
	for _, s := range seeds {
		mask[inSet[s]] = true
	}
	return sub, order, mask
}

// FootprintBound returns the worst-case sampled footprint for a batch of b
// seeds under the given fanouts: b·(1 + f1 + f1·f2 + ...).
func FootprintBound(batch int, fanouts Fanouts) int {
	total := batch
	layer := batch
	for _, f := range fanouts {
		layer *= f
		total += layer
	}
	return total
}
