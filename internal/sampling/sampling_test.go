package sampling

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestKHopFootprintRing(t *testing.T) {
	g := graph.Ring(20)
	fp := KHopFootprint(g, []int{0}, 3)
	// Ring: 1, 3, 5, 7 vertices within 0..3 hops.
	want := []int{1, 3, 5, 7}
	for k, w := range want {
		if fp[k] != w {
			t.Fatalf("hop %d footprint = %d, want %d", k, fp[k], w)
		}
	}
}

func TestKHopFootprintDedupSeeds(t *testing.T) {
	g := graph.Ring(10)
	fp := KHopFootprint(g, []int{3, 3, 3}, 0)
	if fp[0] != 1 {
		t.Fatalf("duplicate seeds should count once, got %d", fp[0])
	}
}

// TestKHopFootprintDirectedGraph is the regression pin for the
// directed-input bug: adjacencyList documented an undirected view but
// only inserted stored out-edges, so on a graph that stores each edge
// once the footprint upstream of the seeds was invisible.
func TestKHopFootprintDirectedGraph(t *testing.T) {
	// Directed path 0→1→2→3, each edge stored once.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	fp := KHopFootprint(g, []int{3}, 3)
	want := []int{1, 2, 3, 4}
	for k, w := range want {
		if fp[k] != w {
			t.Fatalf("hop %d footprint = %d, want %d (in-edges must count)", k, fp[k], w)
		}
	}

	// The same graph with both directions stored must agree everywhere.
	sym := graph.New(4)
	for _, e := range g.Edges {
		sym.AddUndirectedEdge(e[0], e[1])
	}
	for seed := 0; seed < 4; seed++ {
		a := KHopFootprint(g, []int{seed}, 3)
		b := KHopFootprint(sym, []int{seed}, 3)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("seed %d hop %d: directed %d != symmetrized %d", seed, k, a[k], b[k])
			}
		}
	}
}

// TestSampleSubgraphDirectedGraph: the sampler must reach vertices that
// are only connected by in-edges of the seed.
func TestSampleSubgraphDirectedGraph(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	sub, order, mask := SampleSubgraph(g, []int{2}, Fanouts{2, 2}, rand.New(rand.NewSource(1)))
	if len(order) != 3 {
		t.Fatalf("sampled %d vertices, want all 3 (upstream vertices reachable)", len(order))
	}
	if sub.NumVertices != 3 {
		t.Fatalf("subgraph has %d vertices, want 3", sub.NumVertices)
	}
	if !mask[0] && !mask[1] && !mask[2] {
		t.Fatal("no seed marked in the sampled subgraph")
	}
}

// TestAdjacencyListNoDuplicates: a graph that stores both directions
// must not get doubled neighbor entries from the symmetrization (that
// would skew the fan-out sampling distribution).
func TestAdjacencyListNoDuplicates(t *testing.T) {
	g := graph.Ring(6)
	for v, nbrs := range adjacencyList(g) {
		seen := map[int]bool{}
		for _, u := range nbrs {
			if seen[u] {
				t.Fatalf("vertex %d lists neighbor %d twice", v, u)
			}
			seen[u] = true
		}
		if len(nbrs) != 2 {
			t.Fatalf("ring vertex %d has %d neighbors, want 2", v, len(nbrs))
		}
	}
}

func TestKHopFootprintSeedRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KHopFootprint(graph.Ring(5), []int{9}, 1)
}

// TestNeighborhoodExplosion reproduces the paper's §I motivation: on a
// scale-free graph, the exact footprint of even a tiny mini-batch reaches
// most of the graph within 2-3 hops.
func TestNeighborhoodExplosion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RMAT(12, 16, graph.DefaultRMAT, rng)
	sym := graph.New(g.NumVertices)
	for _, e := range g.Edges {
		sym.AddUndirectedEdge(e[0], e[1])
	}
	seeds := make([]int, 16)
	for i := range seeds {
		seeds[i] = rng.Intn(sym.NumVertices)
	}
	fp := KHopFootprint(sym, seeds, 3)
	// Count vertices with any connectivity; isolated RMAT vertices can
	// never be reached.
	st := graph.Stats(sym.Adjacency())
	reachable := sym.NumVertices - st.EmptyRows
	if frac := float64(fp[3]) / float64(reachable); frac < 0.8 {
		t.Fatalf("3-hop footprint = %.2f of reachable graph; explosion expected (>0.8)", frac)
	}
	if fp[1] <= fp[0] || fp[2] <= fp[1] {
		t.Fatalf("footprint must grow per hop: %v", fp)
	}
}

func TestSampleSubgraphBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RMAT(11, 16, graph.DefaultRMAT, rng)
	sym := graph.New(g.NumVertices)
	for _, e := range g.Edges {
		sym.AddUndirectedEdge(e[0], e[1])
	}
	seeds := []int{1, 2, 3, 4}
	fanouts := Fanouts{5, 5}
	sub, order, mask := SampleSubgraph(sym, seeds, fanouts, rng)
	bound := FootprintBound(len(seeds), fanouts)
	if sub.NumVertices > bound {
		t.Fatalf("sampled %d vertices, bound %d", sub.NumVertices, bound)
	}
	if len(order) != sub.NumVertices || len(mask) != sub.NumVertices {
		t.Fatal("order/mask sizes inconsistent")
	}
	// Seeds are the first entries and masked.
	seedCount := 0
	for _, m := range mask {
		if m {
			seedCount++
		}
	}
	if seedCount != len(seeds) {
		t.Fatalf("mask marks %d seeds, want %d", seedCount, len(seeds))
	}
	for i, s := range seeds {
		if order[i] != s {
			t.Fatalf("order[%d] = %d, want seed %d", i, order[i], s)
		}
	}
}

func TestSampleSubgraphEdgesExistInOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Ring(30)
	sub, order, _ := SampleSubgraph(g, []int{0, 15}, Fanouts{2, 2}, rng)
	orig := make(map[[2]int]bool)
	for _, e := range g.Edges {
		orig[e] = true
	}
	for _, e := range sub.Edges {
		oe := [2]int{order[e[0]], order[e[1]]}
		if !orig[oe] {
			t.Fatalf("sampled edge %v -> original %v does not exist", e, oe)
		}
	}
}

func TestFootprintBound(t *testing.T) {
	if got := FootprintBound(10, Fanouts{5, 3}); got != 10+50+150 {
		t.Fatalf("FootprintBound = %d, want 210", got)
	}
	if got := FootprintBound(4, nil); got != 4 {
		t.Fatalf("empty fanouts bound = %d", got)
	}
}

// TestSamplingCapsExplosion is the paper's future-work payoff in one test:
// the sampled footprint stays far below the exact k-hop footprint.
func TestSamplingCapsExplosion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RMAT(12, 16, graph.DefaultRMAT, rng)
	sym := graph.New(g.NumVertices)
	for _, e := range g.Edges {
		sym.AddUndirectedEdge(e[0], e[1])
	}
	seeds := make([]int, 32)
	for i := range seeds {
		seeds[i] = rng.Intn(sym.NumVertices)
	}
	exact := KHopFootprint(sym, seeds, 2)[2]
	sub, _, _ := SampleSubgraph(sym, seeds, Fanouts{4, 4}, rng)
	if sub.NumVertices*3 >= exact {
		t.Fatalf("sampling should cut the footprint ≥3x: sampled %d, exact %d",
			sub.NumVertices, exact)
	}
}
