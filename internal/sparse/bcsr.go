package sparse

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/parallel"
)

// BCSROf is a sparse matrix in block compressed sparse row format: nonzeros
// are grouped into fixed Br×Bc dense blocks, stored row-major per block.
// Structurally empty positions inside a stored block are padded with zero.
//
// BCSR trades padding flops for regular access: within a block the dense
// operand rows are contiguous block-column neighbors, so the SpMM inner
// loop streams Bc consecutive x rows per block instead of one gather per
// nonzero. It wins when the graph has clustered structure (high block fill
// ratio), which internal/costmodel.ChooseFormat checks before selecting it.
//
// Block rows always cover Br matrix rows; when Rows or Cols is not a
// multiple of the block size, the trailing blocks are logically truncated
// (their out-of-range positions are stored but always zero).
type BCSROf[T dense.Elem] struct {
	Rows, Cols int
	Br, Bc     int
	// BlockRowPtr has length ceil(Rows/Br)+1; the block-column indices of
	// block row I occupy BlockColIdx[BlockRowPtr[I]:BlockRowPtr[I+1]],
	// strictly increasing. Block b's values occupy
	// Val[b*Br*Bc : (b+1)*Br*Bc], row-major within the block.
	BlockRowPtr []int
	BlockColIdx []int
	Val         []T
}

// BCSR is the float64 instantiation used by the default training path.
type BCSR = BCSROf[float64]

// NNZStored returns the number of stored values including block padding.
func (m *BCSROf[T]) NNZStored() int { return len(m.Val) }

// NNZ returns the number of stored nonzero values (padding excluded).
func (m *BCSROf[T]) NNZ() int {
	n := 0
	for _, v := range m.Val {
		if v != 0 {
			n++
		}
	}
	return n
}

// BlockRows returns the number of block rows.
func (m *BCSROf[T]) BlockRows() int { return len(m.BlockRowPtr) - 1 }

// FillRatio returns nonzeros / stored slots — the fraction of block storage
// holding real entries. 1.0 means every stored block is completely dense.
func (m *BCSROf[T]) FillRatio() float64 {
	if len(m.Val) == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(len(m.Val))
}

// BCSRFromCSR converts a to BCSR with br×bc blocks. Block sizes must be
// positive. The conversion is structure-preserving: every stored nonzero of
// a lands in exactly one block slot, and ToCSR recovers a exactly (explicit
// stored zeros in a excepted — they are indistinguishable from padding).
func BCSRFromCSR[T dense.Elem](a *CSROf[T], br, bc int) *BCSROf[T] {
	if br <= 0 || bc <= 0 {
		panic(fmt.Sprintf("sparse: BCSRFromCSR block size %dx%d", br, bc))
	}
	nbr := (a.Rows + br - 1) / br
	out := &BCSROf[T]{
		Rows: a.Rows, Cols: a.Cols, Br: br, Bc: bc,
		BlockRowPtr: make([]int, nbr+1),
	}
	// Pass 1: count distinct block columns per block row.
	seen := make([]int, (a.Cols+bc-1)/bc) // last block row that used this block col, +1
	for I := 0; I < nbr; I++ {
		r1 := min((I+1)*br, a.Rows)
		n := 0
		for i := I * br; i < r1; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if J := a.ColIdx[k] / bc; seen[J] != I+1 {
					seen[J] = I + 1
					n++
				}
			}
		}
		out.BlockRowPtr[I+1] = out.BlockRowPtr[I] + n
	}
	nb := out.BlockRowPtr[nbr]
	out.BlockColIdx = make([]int, nb)
	out.Val = make([]T, nb*br*bc)
	// Pass 2: fill. Block columns within a block row appear in ascending
	// order because each CSR row has ascending columns and we emit a block
	// column the first time any row of the block row touches it; a second
	// ascending merge pass fixes rows that introduce earlier block columns.
	pos := make([]int, len(seen)) // block col -> value offset, valid for current block row
	for i := range seen {
		seen[i] = 0
	}
	for I := 0; I < nbr; I++ {
		r1 := min((I+1)*br, a.Rows)
		// Collect the block columns of this block row in ascending order by
		// merging the per-row ascending sequences with a simple mark+sort
		// over marks (block cols are marked in arbitrary order, then
		// emitted ascending by scanning the mark array only over the marked
		// range).
		loJ, hiJ := len(seen), -1
		for i := I * br; i < r1; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				J := a.ColIdx[k] / bc
				if seen[J] != I+1 {
					seen[J] = I + 1
					if J < loJ {
						loJ = J
					}
					if J > hiJ {
						hiJ = J
					}
				}
			}
		}
		b := out.BlockRowPtr[I]
		for J := loJ; J <= hiJ; J++ {
			if seen[J] == I+1 {
				out.BlockColIdx[b] = J
				pos[J] = b * br * bc
				b++
			}
		}
		for i := I * br; i < r1; i++ {
			r := i - I*br
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				c := a.ColIdx[k]
				out.Val[pos[c/bc]+r*bc+c%bc] = a.Val[k]
			}
		}
	}
	return out
}

// ToCSR converts back to CSR, dropping zero slots (block padding). For any
// input without explicit stored zeros, BCSRFromCSR followed by ToCSR is the
// identity.
func (m *BCSROf[T]) ToCSR() *CSROf[T] {
	out := &CSROf[T]{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for I := 0; I < m.BlockRows(); I++ {
		r1 := min((I+1)*m.Br, m.Rows)
		for i := I * m.Br; i < r1; i++ {
			r := i - I*m.Br
			for b := m.BlockRowPtr[I]; b < m.BlockRowPtr[I+1]; b++ {
				base := b*m.Br*m.Bc + r*m.Bc
				c0 := m.BlockColIdx[b] * m.Bc
				for c := 0; c < m.Bc; c++ {
					if v := m.Val[base+c]; v != 0 {
						out.ColIdx = append(out.ColIdx, c0+c)
						out.Val = append(out.Val, v)
					}
				}
			}
			out.RowPtr[i+1] = len(out.ColIdx)
		}
	}
	return out
}

// SpMM computes dst = m * x. dst must be m.Rows x x.Cols and is
// overwritten.
//
// For a fixed output element the accumulation visits stored entries in
// ascending column order (blocks ascend within a block row, columns ascend
// within a block) and skips zero slots, so the result is bit-identical to
// the CSR kernel on the same matrix.
func (m *BCSROf[T]) SpMM(dst, x *dense.Of[T]) {
	m.checkSpMM(dst, x, "BCSR.SpMM")
	dst.Zero()
	m.SpMMAdd(dst, x)
}

// SpMMAdd computes dst += m * x.
func (m *BCSROf[T]) SpMMAdd(dst, x *dense.Of[T]) {
	m.checkSpMM(dst, x, "BCSR.SpMMAdd")
	work := 2 * int64(len(m.Val)) * int64(x.Cols)
	if parallel.Inline(m.BlockRows(), work) {
		m.spMMAddBlockRows(dst, x, nil, false, 0, m.BlockRows())
		return
	}
	parallel.Rows(m.BlockRows(), work, func(lo, hi int) {
		m.spMMAddBlockRows(dst, x, nil, false, lo, hi)
	})
}

// SpMMBiasReLU computes dst = relu(m*x + bias), applying the fused epilogue
// to each block row as soon as its accumulation finishes. bias may be nil.
func (m *BCSROf[T]) SpMMBiasReLU(dst, x *dense.Of[T], bias []T) {
	m.checkSpMM(dst, x, "BCSR.SpMMBiasReLU")
	dst.Zero()
	work := 2 * int64(len(m.Val)) * int64(x.Cols)
	if parallel.Inline(m.BlockRows(), work) {
		m.spMMAddBlockRows(dst, x, bias, true, 0, m.BlockRows())
		return
	}
	parallel.Rows(m.BlockRows(), work, func(lo, hi int) {
		m.spMMAddBlockRows(dst, x, bias, true, lo, hi)
	})
}

// spMMAddBlockRows accumulates block rows [lo, hi) of m*x into dst; with
// epilogue set it then applies bias+ReLU to the block row while hot. Each
// output row belongs to exactly one block row, so the parallel split stays
// bit-identical.
func (m *BCSROf[T]) spMMAddBlockRows(dst, x *dense.Of[T], bias []T, epilogue bool, lo, hi int) {
	f := x.Cols
	for I := lo; I < hi; I++ {
		r1 := min((I+1)*m.Br, m.Rows)
		for b := m.BlockRowPtr[I]; b < m.BlockRowPtr[I+1]; b++ {
			c0 := m.BlockColIdx[b] * m.Bc
			cEnd := min(m.Bc, m.Cols-c0)
			for i := I * m.Br; i < r1; i++ {
				base := b*m.Br*m.Bc + (i-I*m.Br)*m.Bc
				drow := dst.Data[i*f : (i+1)*f]
				for c := 0; c < cEnd; c++ {
					v := m.Val[base+c]
					if v == 0 {
						continue
					}
					dense.AxpyRow(drow, v, x.Data[(c0+c)*f:(c0+c+1)*f])
				}
			}
		}
		if epilogue {
			for i := I * m.Br; i < r1; i++ {
				dense.BiasReLURow(dst.Data[i*f:(i+1)*f], bias)
			}
		}
	}
}

func (m *BCSROf[T]) checkSpMM(dst, x *dense.Of[T], op string) {
	if m.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: %s inner dimension mismatch: %dx%d * %dx%d", op, m.Rows, m.Cols, x.Rows, x.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, m.Rows, x.Cols))
	}
}
