// Package sparse implements the compressed sparse row (CSR) matrices and
// sparse-times-dense kernels (SpMM) at the heart of GNN training.
//
// The paper's key computation is multiplying the (normalized) adjacency
// matrix A — stored sparse — by tall-skinny dense activation matrices. This
// package provides those kernels plus the block-extraction operations needed
// to lay a sparse matrix out on 1D, 2D, and 3D process grids, and the
// symmetric normalization D^{-1/2}(A+I)D^{-1/2} from Kipf & Welling.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/dense"
)

// Coord is a single nonzero in coordinate (COO) format.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSROf is a sparse matrix in compressed sparse row format, generic over
// the value type so the float32 mixed-precision path can reuse every kernel
// and converter.
//
// RowPtr has length Rows+1; the column indices and values of row i occupy
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]]. Column
// indices are strictly increasing within each row.
type CSROf[T dense.Elem] struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []T
}

// CSR is the float64 CSR matrix used by the default training path.
type CSR = CSROf[float64]

// ConvertCSR returns a copy of a with values rounded through T — the
// boundary where the mixed-precision path downcasts the adjacency matrix
// once at setup. Structure (RowPtr, ColIdx) is copied, not shared.
func ConvertCSR[T dense.Elem](a *CSR) *CSROf[T] {
	out := &CSROf[T]{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    make([]T, len(a.Val)),
	}
	for i, v := range a.Val {
		out.Val[i] = T(v)
	}
	return out
}

// NewCSR builds a CSR matrix from coordinate entries. Duplicate (row, col)
// entries are summed. Entries out of range cause a panic.
func NewCSR(rows, cols int, entries []Coord) *CSR {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimensions %dx%d", rows, cols))
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for %dx%d", e.Row, e.Col, rows, cols))
		}
	}
	sorted := make([]Coord, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	// Sum duplicates in place.
	dedup := sorted[:0]
	for _, e := range sorted {
		if n := len(dedup); n > 0 && dedup[n-1].Row == e.Row && dedup[n-1].Col == e.Col {
			dedup[n-1].Val += e.Val
		} else {
			dedup = append(dedup, e)
		}
	}
	m := &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int, rows+1),
		ColIdx: make([]int, len(dedup)),
		Val:    make([]float64, len(dedup)),
	}
	for i, e := range dedup {
		m.RowPtr[e.Row+1]++
		m.ColIdx[i] = e.Col
		m.Val[i] = e.Val
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// NNZ returns the number of stored nonzeros.
func (m *CSROf[T]) NNZ() int { return len(m.Val) }

// At returns element (i, j) with a binary search within row i.
func (m *CSROf[T]) At(i, j int) T {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range for %dx%d", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if k < hi && m.ColIdx[k] == j {
		return m.Val[k]
	}
	return 0
}

// Entries returns all nonzeros in row-major order as coordinate entries
// (values widened to float64).
func (m *CSROf[T]) Entries() []Coord {
	out := make([]Coord, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out = append(out, Coord{Row: i, Col: m.ColIdx[k], Val: float64(m.Val[k])})
		}
	}
	return out
}

// Clone returns a deep copy of m.
func (m *CSROf[T]) Clone() *CSROf[T] {
	out := &CSROf[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]T(nil), m.Val...),
	}
	return out
}

// Transpose returns mᵀ in CSR format using a counting pass (the classic
// CSR→CSC conversion, reinterpreted).
func (m *CSROf[T]) Transpose() *CSROf[T] {
	out := &CSROf[T]{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]T, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		out.RowPtr[c+1]++
	}
	for i := 0; i < m.Cols; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := append([]int(nil), out.RowPtr[:m.Cols]...)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			pos := next[c]
			next[c]++
			out.ColIdx[pos] = i
			out.Val[pos] = m.Val[k]
		}
	}
	return out
}

// ExtractBlock returns the sub-matrix with rows [r0, r1) and columns
// [c0, c1) re-indexed to local coordinates, as used when distributing a
// matrix onto a process grid.
func (m *CSROf[T]) ExtractBlock(r0, r1, c0, c1 int) *CSROf[T] {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("sparse: ExtractBlock [%d:%d, %d:%d] out of range for %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	out := &CSROf[T]{Rows: r1 - r0, Cols: c1 - c0, RowPtr: make([]int, r1-r0+1)}
	for i := r0; i < r1; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		start := lo + sort.SearchInts(m.ColIdx[lo:hi], c0)
		end := lo + sort.SearchInts(m.ColIdx[lo:hi], c1)
		for k := start; k < end; k++ {
			out.ColIdx = append(out.ColIdx, m.ColIdx[k]-c0)
			out.Val = append(out.Val, m.Val[k])
		}
		out.RowPtr[i-r0+1] = len(out.ColIdx)
	}
	return out
}

// Scale multiplies all values by alpha in place.
func (m *CSROf[T]) Scale(alpha T) {
	for i := range m.Val {
		m.Val[i] *= alpha
	}
}

// ToDense materializes m as a dense matrix (test/debug helper; avoid on
// large inputs).
func (m *CSROf[T]) ToDense() *dense.Of[T] {
	out := dense.NewOf[T](m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return out
}

// RowNNZ returns the number of nonzeros in row i.
func (m *CSROf[T]) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// NonEmptyRows returns how many rows have at least one nonzero. The paper's
// hypersparsity discussion (§IV-A-3, citing Buluç & Gilbert) keys on this:
// 2D-partitioned submatrices of sparse graphs have mostly empty rows.
func (m *CSROf[T]) NonEmptyRows() int {
	n := 0
	for i := 0; i < m.Rows; i++ {
		if m.RowNNZ(i) > 0 {
			n++
		}
	}
	return n
}

// AvgDegree returns NNZ/Rows, the average number of nonzeros per row
// (written d in the paper).
func (m *CSROf[T]) AvgDegree() float64 {
	if m.Rows == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.Rows)
}

// Equal reports whether a and b have identical shape and nonzero structure
// with values equal within tol.
func Equal[T dense.Elem](a, b *CSROf[T], tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] {
			return false
		}
		d := float64(a.Val[k]) - float64(b.Val[k])
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}
