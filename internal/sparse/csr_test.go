package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
)

// randCSR builds a random sparse matrix with the given density for tests.
func randCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	var entries []Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				entries = append(entries, Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return NewCSR(rows, cols, entries)
}

func randDense(rng *rand.Rand, r, c int) *dense.Matrix {
	m := dense.New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewCSRBasic(t *testing.T) {
	m := NewCSR(3, 3, []Coord{
		{0, 1, 2}, {1, 0, 3}, {2, 2, 4}, {0, 2, 5},
	})
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 || m.At(2, 2) != 4 || m.At(0, 2) != 5 {
		t.Fatalf("wrong values: %v", m.ToDense())
	}
	if m.At(1, 1) != 0 {
		t.Fatal("missing entry should read 0")
	}
}

func TestNewCSRSumsDuplicates(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 0, 1}, {0, 0, 2}, {1, 1, 3}})
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 after dedup", m.NNZ())
	}
	if m.At(0, 0) != 3 {
		t.Fatalf("At(0,0) = %v, want 3 (1+2)", m.At(0, 0))
	}
}

func TestNewCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range entry")
		}
	}()
	NewCSR(2, 2, []Coord{{2, 0, 1}})
}

func TestCSRColumnIndicesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randCSR(rng, 20, 30, 0.2)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i] + 1; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k-1] >= m.ColIdx[k] {
				t.Fatalf("row %d indices not strictly increasing", i)
			}
		}
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randCSR(rng, 15, 12, 0.3)
	m2 := NewCSR(m.Rows, m.Cols, m.Entries())
	if !Equal(m, m2, 0) {
		t.Fatal("Entries/NewCSR round trip changed the matrix")
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randCSR(rng, 9, 14, 0.25)
	got := m.Transpose().ToDense()
	want := m.ToDense().T()
	if dense.MaxAbsDiff(got, want) != 0 {
		t.Fatal("Transpose does not match dense transpose")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%15)+1, int(c8%15)+1
		m := randCSR(rng, r, c, 0.3)
		return Equal(m.Transpose().Transpose(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randCSR(rng, 10, 10, 0.4)
	blk := m.ExtractBlock(2, 7, 3, 9)
	want := m.ToDense().SubMatrix(2, 7, 3, 9)
	if dense.MaxAbsDiff(blk.ToDense(), want) != 0 {
		t.Fatal("ExtractBlock does not match dense SubMatrix")
	}
}

// Property: extracting a full grid of blocks and reassembling reproduces the
// matrix (the invariant 2D distribution relies on).
func TestBlockGridReassembly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randCSR(rng, 12, 12, 0.3)
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {3, 4}, {4, 3}, {12, 12}} {
		pr, pc := grid[0], grid[1]
		got := dense.New(12, 12)
		for i := 0; i < pr; i++ {
			for j := 0; j < pc; j++ {
				r0, r1 := i*12/pr, (i+1)*12/pr
				c0, c1 := j*12/pc, (j+1)*12/pc
				blk := m.ExtractBlock(r0, r1, c0, c1)
				got.SetSubMatrix(r0, c0, blk.ToDense())
			}
		}
		if dense.MaxAbsDiff(got, m.ToDense()) != 0 {
			t.Fatalf("grid %dx%d reassembly failed", pr, pc)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 0, 1}})
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] != 1 {
		t.Fatal("Clone must not share value storage")
	}
}

func TestScale(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 0, 2}, {1, 1, 4}})
	m.Scale(0.5)
	if m.At(0, 0) != 1 || m.At(1, 1) != 2 {
		t.Fatalf("Scale failed: %v", m.ToDense())
	}
}

func TestRowNNZAndNonEmptyRows(t *testing.T) {
	m := NewCSR(4, 4, []Coord{{0, 0, 1}, {0, 1, 1}, {2, 3, 1}})
	if m.RowNNZ(0) != 2 || m.RowNNZ(1) != 0 || m.RowNNZ(2) != 1 {
		t.Fatal("RowNNZ wrong")
	}
	if m.NonEmptyRows() != 2 {
		t.Fatalf("NonEmptyRows = %d, want 2", m.NonEmptyRows())
	}
	if m.AvgDegree() != 0.75 {
		t.Fatalf("AvgDegree = %v, want 0.75", m.AvgDegree())
	}
}

func TestEqualDifferentStructure(t *testing.T) {
	a := NewCSR(2, 2, []Coord{{0, 0, 1}})
	b := NewCSR(2, 2, []Coord{{0, 1, 1}})
	if Equal(a, b, 1e-9) {
		t.Fatal("Equal must compare structure")
	}
}

func TestSpMMMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {5, 7, 3}, {20, 20, 8}, {31, 17, 5}} {
		a := randCSR(rng, dims[0], dims[1], 0.3)
		x := randDense(rng, dims[1], dims[2])
		got := dense.New(dims[0], dims[2])
		SpMM(got, a, x)
		want := dense.MulNaive(a.ToDense(), x)
		if dense.MaxAbsDiff(got, want) > 1e-10 {
			t.Fatalf("SpMM(%v) mismatch: %v", dims, dense.MaxAbsDiff(got, want))
		}
	}
}

func TestSpMMTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randCSR(rng, 13, 9, 0.3)
	x := randDense(rng, 13, 4)
	got := dense.New(9, 4)
	SpMMT(got, a, x)
	want := dense.MulNaive(a.ToDense().T(), x)
	if dense.MaxAbsDiff(got, want) > 1e-10 {
		t.Fatalf("SpMMT mismatch: %v", dense.MaxAbsDiff(got, want))
	}
}

func TestSpMMAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randCSR(rng, 6, 6, 0.4)
	x := randDense(rng, 6, 3)
	dst := randDense(rng, 6, 3)
	orig := dst.Clone()
	SpMMAdd(dst, a, x)
	want := dense.MulNaive(a.ToDense(), x)
	dense.Add(want, want, orig)
	if dense.MaxAbsDiff(dst, want) > 1e-10 {
		t.Fatal("SpMMAdd accumulation wrong")
	}
}

func TestSpMMTAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randCSR(rng, 6, 5, 0.4)
	x := randDense(rng, 6, 3)
	dst := randDense(rng, 5, 3)
	orig := dst.Clone()
	SpMMTAdd(dst, a, x)
	want := dense.MulNaive(a.ToDense().T(), x)
	dense.Add(want, want, orig)
	if dense.MaxAbsDiff(dst, want) > 1e-10 {
		t.Fatal("SpMMTAdd accumulation wrong")
	}
}

// Property: SpMMT(a, x) == SpMM(aᵀ, x) — the identity the 1D/2D trainers
// rely on when choosing between scatter and explicit transpose.
func TestSpMMTransposeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(r8, c8, f8 uint8) bool {
		r, c, fc := int(r8%12)+1, int(c8%12)+1, int(f8%6)+1
		a := randCSR(rng, r, c, 0.35)
		x := randDense(rng, r, fc)
		viaScatter := dense.New(c, fc)
		SpMMT(viaScatter, a, x)
		viaTranspose := dense.New(c, fc)
		SpMM(viaTranspose, a.Transpose(), x)
		return dense.MaxAbsDiff(viaScatter, viaTranspose) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMMFlops(t *testing.T) {
	a := NewCSR(3, 3, []Coord{{0, 0, 1}, {1, 2, 1}})
	if got := SpMMFlops(a, 10); got != 40 {
		t.Fatalf("SpMMFlops = %d, want 40", got)
	}
}

func TestSpMMDimensionPanics(t *testing.T) {
	a := NewCSR(3, 4, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpMM(dense.New(3, 2), a, dense.New(5, 2))
}

func TestNormalizeSymmetric(t *testing.T) {
	// Path graph 0-1-2 (undirected).
	a := NewCSR(3, 3, []Coord{{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}})
	norm := NormalizeSymmetric(a)
	// A+I degrees: d0 = 2, d1 = 3, d2 = 2.
	want := dense.New(3, 3)
	deg := []float64{2, 3, 2}
	adj := a.ToDense()
	for i := 0; i < 3; i++ {
		adj.Set(i, i, 1)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want.Set(i, j, adj.At(i, j)/math.Sqrt(deg[i]*deg[j]))
		}
	}
	if dense.MaxAbsDiff(norm.ToDense(), want) > 1e-12 {
		t.Fatalf("NormalizeSymmetric mismatch:\n%v\nwant\n%v", norm.ToDense(), want)
	}
}

func TestNormalizeSymmetricIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Build a random symmetric pattern.
	var entries []Coord
	n := 20
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				entries = append(entries, Coord{i, j, 1}, Coord{j, i, 1})
			}
		}
	}
	norm := NormalizeSymmetric(NewCSR(n, n, entries))
	nt := norm.Transpose()
	if !Equal(norm, nt, 1e-12) {
		t.Fatal("normalized symmetric matrix should stay symmetric")
	}
}

func TestNormalizeSpectralRadius(t *testing.T) {
	// The symmetric normalization has eigenvalues in [-1, 1]; a power
	// iteration from a positive vector must not blow up.
	rng := rand.New(rand.NewSource(13))
	var entries []Coord
	n := 30
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.15 {
				entries = append(entries, Coord{i, j, 1}, Coord{j, i, 1})
			}
		}
	}
	norm := NormalizeSymmetric(NewCSR(n, n, entries))
	v := dense.New(n, 1)
	v.Fill(1)
	out := dense.New(n, 1)
	for iter := 0; iter < 100; iter++ {
		SpMM(out, norm, v)
		// Renormalize so the dominant eigenvalue appears as the norm ratio.
		if s := out.Norm(); s > 0 && iter < 99 {
			out.Scale(1 / s)
		}
		v, out = out, v
	}
	// After renormalized power iteration, ||Av||/||v|| approximates the
	// spectral radius, which is exactly 1 for the Kipf-Welling normalization.
	if lambda := v.Norm(); lambda > 1.0+1e-9 {
		t.Fatalf("dominant eigenvalue estimate %v; spectral radius should be ≤ 1", lambda)
	}
}

func TestRowStochastic(t *testing.T) {
	a := NewCSR(3, 3, []Coord{{0, 0, 2}, {0, 1, 2}, {2, 2, 5}})
	rs := RowStochastic(a)
	if rs.At(0, 0) != 0.5 || rs.At(0, 1) != 0.5 || rs.At(2, 2) != 1 {
		t.Fatalf("RowStochastic wrong: %v", rs.ToDense())
	}
	// Row 1 is empty and must stay empty.
	if rs.RowNNZ(1) != 0 {
		t.Fatal("empty row must remain empty")
	}
}

func BenchmarkSpMM(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	a := randCSR(rng, 2000, 2000, 0.005)
	x := randDense(rng, 2000, 64)
	dst := dense.New(2000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpMM(dst, a, x)
	}
}
