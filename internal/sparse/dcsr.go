package sparse

import (
	"fmt"
	"sort"

	"repro/internal/dense"
)

// DCSR is a doubly compressed sparse row matrix (Buluç & Gilbert, the
// paper's [8]): only non-empty rows are represented, which the paper's
// §VI-a identifies as essential for 2D-partitioned graph blocks — after a
// √P x √P split, block average degree falls by √P and most rows become
// empty ("hypersparsity").
//
// Storage is 2·nnz + 2·nzr + 1 words (nzr = non-empty rows), versus CSR's
// 2·nnz + rows + 1; for hypersparse blocks with nzr ≪ rows this removes
// the dominant term.
type DCSR struct {
	Rows, Cols int
	// RowIdx lists the non-empty row ids in increasing order.
	RowIdx []int
	// RowPtr has length len(RowIdx)+1; the k-th non-empty row's entries
	// occupy ColIdx[RowPtr[k]:RowPtr[k+1]].
	RowPtr []int
	ColIdx []int
	Val    []float64
}

// DCSRFromCSR compresses a CSR matrix.
func DCSRFromCSR(m *CSR) *DCSR {
	out := &DCSR{Rows: m.Rows, Cols: m.Cols}
	for i := 0; i < m.Rows; i++ {
		if m.RowNNZ(i) == 0 {
			continue
		}
		out.RowIdx = append(out.RowIdx, i)
		out.RowPtr = append(out.RowPtr, len(out.ColIdx))
		out.ColIdx = append(out.ColIdx, m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]]...)
		out.Val = append(out.Val, m.Val[m.RowPtr[i]:m.RowPtr[i+1]]...)
	}
	out.RowPtr = append(out.RowPtr, len(out.ColIdx))
	return out
}

// ToCSR expands back to CSR.
func (d *DCSR) ToCSR() *CSR {
	out := &CSR{
		Rows:   d.Rows,
		Cols:   d.Cols,
		RowPtr: make([]int, d.Rows+1),
		ColIdx: append([]int(nil), d.ColIdx...),
		Val:    append([]float64(nil), d.Val...),
	}
	for k, row := range d.RowIdx {
		out.RowPtr[row+1] = d.RowPtr[k+1] - d.RowPtr[k]
	}
	for i := 0; i < d.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// NNZ returns the number of stored nonzeros.
func (d *DCSR) NNZ() int { return len(d.Val) }

// NonEmptyRows returns the count of represented rows.
func (d *DCSR) NonEmptyRows() int { return len(d.RowIdx) }

// Words returns the modeled storage footprint in words.
func (d *DCSR) Words() int64 {
	return 2*int64(d.NNZ()) + 2*int64(len(d.RowIdx)) + 1
}

// CSRWords returns the CSR footprint for the same matrix, for comparison.
func (d *DCSR) CSRWords() int64 {
	return 2*int64(d.NNZ()) + int64(d.Rows) + 1
}

// At returns element (i, j).
func (d *DCSR) At(i, j int) float64 {
	if i < 0 || i >= d.Rows || j < 0 || j >= d.Cols {
		panic(fmt.Sprintf("sparse: DCSR index (%d,%d) out of range for %dx%d", i, j, d.Rows, d.Cols))
	}
	k := sort.SearchInts(d.RowIdx, i)
	if k == len(d.RowIdx) || d.RowIdx[k] != i {
		return 0
	}
	lo, hi := d.RowPtr[k], d.RowPtr[k+1]
	p := lo + sort.SearchInts(d.ColIdx[lo:hi], j)
	if p < hi && d.ColIdx[p] == j {
		return d.Val[p]
	}
	return 0
}

// SpMMDCSR computes dst = d * x, skipping empty rows entirely. dst is
// overwritten.
func SpMMDCSR(dst *dense.Matrix, d *DCSR, x *dense.Matrix) {
	if d.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: SpMMDCSR inner dimension mismatch: %dx%d * %dx%d", d.Rows, d.Cols, x.Rows, x.Cols))
	}
	if dst.Rows != d.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: SpMMDCSR dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, d.Rows, x.Cols))
	}
	dst.Zero()
	f := x.Cols
	for k, row := range d.RowIdx {
		drow := dst.Data[row*f : (row+1)*f]
		for p := d.RowPtr[k]; p < d.RowPtr[k+1]; p++ {
			v := d.Val[p]
			xrow := x.Data[d.ColIdx[p]*f : (d.ColIdx[p]+1)*f]
			for j, xv := range xrow {
				drow[j] += v * xv
			}
		}
	}
}
