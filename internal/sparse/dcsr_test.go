package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
)

func TestDCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(r8, c8 uint8) bool {
		r, c := int(r8%30)+1, int(c8%30)+1
		m := randCSR(rng, r, c, 0.15)
		return Equal(DCSRFromCSR(m).ToCSR(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDCSRAt(t *testing.T) {
	m := NewCSR(5, 5, []Coord{{1, 2, 7}, {3, 0, 4}})
	d := DCSRFromCSR(m)
	if d.At(1, 2) != 7 || d.At(3, 0) != 4 {
		t.Fatal("stored values wrong")
	}
	if d.At(0, 0) != 0 || d.At(1, 3) != 0 || d.At(4, 4) != 0 {
		t.Fatal("missing values should read 0")
	}
	if d.NonEmptyRows() != 2 || d.NNZ() != 2 {
		t.Fatalf("structure wrong: %+v", d)
	}
}

func TestDCSRAtOutOfRangePanics(t *testing.T) {
	d := DCSRFromCSR(NewCSR(2, 2, nil))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.At(2, 0)
}

func TestSpMMDCSRMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randCSR(rng, 40, 25, 0.05) // hypersparse-ish
	x := randDense(rng, 25, 6)
	want := dense.New(40, 6)
	SpMM(want, m, x)
	got := dense.New(40, 6)
	SpMMDCSR(got, DCSRFromCSR(m), x)
	if dense.MaxAbsDiff(got, want) > 1e-12 {
		t.Fatal("DCSR SpMM diverges from CSR SpMM")
	}
}

func TestSpMMDCSRDimensionPanics(t *testing.T) {
	d := DCSRFromCSR(NewCSR(3, 4, nil))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SpMMDCSR(dense.New(3, 2), d, dense.New(5, 2))
}

// TestDCSRHypersparseSavings quantifies the §VI-a storage argument: for a
// 2D-partitioned block whose rows are mostly empty, DCSR removes the
// O(rows) pointer array.
func TestDCSRHypersparseSavings(t *testing.T) {
	// 1000 rows, only 30 non-empty.
	var entries []Coord
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		entries = append(entries, Coord{Row: rng.Intn(1000), Col: rng.Intn(100), Val: 1})
	}
	d := DCSRFromCSR(NewCSR(1000, 100, entries))
	if d.Words() >= d.CSRWords()/3 {
		t.Fatalf("DCSR (%d words) should be ≥3x smaller than CSR (%d words) here",
			d.Words(), d.CSRWords())
	}
}

// TestDCSRDenseBlockNoPenalty: when every row is occupied, DCSR costs only
// ~nzr extra words over CSR.
func TestDCSRDenseBlockOverheadBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randCSR(rng, 50, 50, 0.5)
	d := DCSRFromCSR(m)
	if d.Words() > d.CSRWords()+int64(d.NonEmptyRows()) {
		t.Fatalf("DCSR overhead too large: %d vs CSR %d", d.Words(), d.CSRWords())
	}
}

func TestDCSREmptyMatrix(t *testing.T) {
	d := DCSRFromCSR(NewCSR(10, 10, nil))
	if d.NNZ() != 0 || d.NonEmptyRows() != 0 {
		t.Fatal("empty matrix should compress to nothing")
	}
	out := dense.New(10, 3)
	SpMMDCSR(out, d, dense.New(10, 3))
	if out.MaxAbs() != 0 {
		t.Fatal("empty SpMM should produce zeros")
	}
	if !Equal(d.ToCSR(), NewCSR(10, 10, nil), 0) {
		t.Fatal("empty round trip failed")
	}
}
