package sparse

import (
	"testing"

	"repro/internal/dense"
)

// Fuzz targets for the specialized storage formats. Sparse payloads are
// strictly positive integers — duplicates sum to positive integers, so the
// built CSR never stores an explicit zero and the format converters'
// zero-skipping is exercised only on genuine padding. Dense payloads are
// small integers. Under these conditions every comparison below is exact
// bitwise equality: round-trips must reproduce the CSR exactly, and the
// format SpMM kernels must match the CSR kernel bit for bit.

// posCooFromBytes decodes a byte stream into coordinate entries with
// values in [1, 8], three bytes per entry.
func posCooFromBytes(data []byte, rows, cols int) []Coord {
	var out []Coord
	for i := 0; i+2 < len(data); i += 3 {
		out = append(out, Coord{
			Row: int(data[i]) % rows,
			Col: int(data[i+1]) % cols,
			Val: float64(int(data[i+2]%8) + 1),
		})
	}
	return out
}

// intDense fills an r x c matrix with small integers derived from data.
func intDense(data []byte, r, c int) *dense.Matrix {
	x := dense.New(r, c)
	for i := range x.Data {
		b := byte(i)
		if len(data) > 0 {
			b += data[i%len(data)]
		}
		x.Data[i] = float64(int(b%9) - 4)
	}
	return x
}

// FuzzBCSRFromCSR checks the BCSR converter and kernels: valid block
// structure, exact CSR round-trip, and bitwise SpMM/SpMMAdd/SpMMBiasReLU
// equality against the CSR kernels.
func FuzzBCSRFromCSR(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 1, 2, 1, 0, 3, 1, 1, 4}, byte(4), byte(4), byte(2), byte(2), byte(3))
	f.Add([]byte{5, 5, 5, 1, 2, 3, 9, 8, 7}, byte(9), byte(7), byte(4), byte(3), byte(1))
	f.Add([]byte{}, byte(1), byte(1), byte(1), byte(1), byte(2))
	f.Add([]byte{255, 0, 9, 0, 255, 9, 128, 128, 9}, byte(24), byte(24), byte(5), byte(6), byte(4))
	f.Fuzz(func(t *testing.T, data []byte, rb, cb, brb, bcb, fb byte) {
		rows, cols := dim(rb), dim(cb)
		br, bc := 1+int(brb)%6, 1+int(bcb)%6
		feats := 1 + int(fb)%6
		a := NewCSR(rows, cols, posCooFromBytes(data, rows, cols))

		m := BCSRFromCSR(a, br, bc)
		if m.Br != br || m.Bc != bc || m.Rows != rows || m.Cols != cols {
			t.Fatalf("shape %dx%d blocks %dx%d, want %dx%d blocks %dx%d",
				m.Rows, m.Cols, m.Br, m.Bc, rows, cols, br, bc)
		}
		nbr := (rows + br - 1) / br
		if len(m.BlockRowPtr) != nbr+1 || m.BlockRowPtr[0] != 0 {
			t.Fatalf("bad BlockRowPtr frame: len %d", len(m.BlockRowPtr))
		}
		for I := 0; I < nbr; I++ {
			if m.BlockRowPtr[I] > m.BlockRowPtr[I+1] {
				t.Fatalf("BlockRowPtr decreases at block row %d", I)
			}
			for b := m.BlockRowPtr[I]; b < m.BlockRowPtr[I+1]; b++ {
				if J := m.BlockColIdx[b]; J < 0 || J*bc >= cols {
					t.Fatalf("block col %d out of range at block row %d", J, I)
				}
				if b > m.BlockRowPtr[I] && m.BlockColIdx[b] <= m.BlockColIdx[b-1] {
					t.Fatalf("block cols not strictly increasing in block row %d", I)
				}
			}
		}
		if len(m.Val) != m.BlockRowPtr[nbr]*br*bc {
			t.Fatalf("val storage %d, want %d blocks x %d", len(m.Val), m.BlockRowPtr[nbr], br*bc)
		}
		if m.NNZ() != a.NNZ() {
			t.Fatalf("BCSR stores %d nonzeros, CSR has %d", m.NNZ(), a.NNZ())
		}

		if rt := m.ToCSR(); !Equal(rt, a, 0) {
			t.Fatal("BCSR→CSR round-trip differs")
		}

		x := intDense(data, cols, feats)
		want := dense.New(rows, feats)
		SpMM(want, a, x)
		got := dense.New(rows, feats)
		m.SpMM(got, x)
		if !dense.EqualWithin(got, want, 0) {
			t.Fatalf("BCSR SpMM differs from CSR, max |Δ| = %g", dense.MaxAbsDiff(got, want))
		}
		m.SpMMAdd(got, x)
		for i := range got.Data {
			if got.Data[i] != 2*want.Data[i] {
				t.Fatalf("BCSR SpMMAdd accumulation wrong at %d", i)
			}
		}
		bias := make([]float64, feats)
		for j := range bias {
			bias[j] = float64(j%5 - 2)
		}
		wantF := dense.New(rows, feats)
		SpMMBiasReLU(wantF, a, x, bias)
		gotF := dense.New(rows, feats)
		m.SpMMBiasReLU(gotF, x, bias)
		if !dense.EqualWithin(gotF, wantF, 0) {
			t.Fatalf("BCSR SpMMBiasReLU differs from CSR, max |Δ| = %g", dense.MaxAbsDiff(gotF, wantF))
		}
	})
}

// FuzzSELLFromCSR checks the SELL-C-σ converter and kernels: Perm is a
// permutation, slice storage is consistent, the CSR round-trip is exact,
// and SpMM/SpMMBiasReLU match the CSR kernels bitwise.
func FuzzSELLFromCSR(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 1, 2, 1, 0, 3, 1, 1, 4}, byte(4), byte(4), byte(2), byte(4), byte(3))
	f.Add([]byte{5, 5, 5, 1, 2, 3, 9, 8, 7}, byte(9), byte(7), byte(3), byte(9), byte(1))
	f.Add([]byte{}, byte(1), byte(1), byte(1), byte(1), byte(2))
	f.Add([]byte{255, 0, 9, 0, 255, 9, 128, 128, 9, 7, 7, 7}, byte(24), byte(24), byte(7), byte(63), byte(4))
	f.Fuzz(func(t *testing.T, data []byte, rb, cb, cB, sigB, fb byte) {
		rows, cols := dim(rb), dim(cb)
		c := 1 + int(cB)%8
		sigma := 1 + int(sigB)%64
		feats := 1 + int(fb)%6
		a := NewCSR(rows, cols, posCooFromBytes(data, rows, cols))

		m := SELLFromCSR(a, c, sigma)
		if m.C != c {
			t.Fatalf("slice height %d, want %d", m.C, c)
		}
		if m.Sigma < sigma || m.Sigma%c != 0 {
			t.Fatalf("sigma %d not a multiple of %d covering %d", m.Sigma, c, sigma)
		}
		if len(m.Perm) != rows {
			t.Fatalf("perm length %d, want %d", len(m.Perm), rows)
		}
		seen := make([]bool, rows)
		for _, i := range m.Perm {
			if i < 0 || i >= rows || seen[i] {
				t.Fatalf("Perm is not a permutation: row %d", i)
			}
			seen[i] = true
		}
		nSlices := (rows + c - 1) / c
		if len(m.SlicePtr) != nSlices+1 || m.SlicePtr[0] != 0 || m.SlicePtr[nSlices] != len(m.Val) {
			t.Fatalf("bad SlicePtr frame")
		}
		// Within each sort window, slot order is by non-increasing row
		// degree.
		for w0 := 0; w0 < rows; w0 += m.Sigma {
			w1 := min(w0+m.Sigma, rows)
			for s := w0 + 1; s < w1; s++ {
				if a.RowNNZ(m.Perm[s]) > a.RowNNZ(m.Perm[s-1]) {
					t.Fatalf("window %d not sorted by degree at slot %d", w0/m.Sigma, s)
				}
			}
		}
		if m.NNZ() != a.NNZ() {
			t.Fatalf("SELL stores %d nonzeros, CSR has %d", m.NNZ(), a.NNZ())
		}

		if rt := m.ToCSR(); !Equal(rt, a, 0) {
			t.Fatal("SELL→CSR round-trip differs")
		}

		x := intDense(data, cols, feats)
		want := dense.New(rows, feats)
		SpMM(want, a, x)
		got := dense.New(rows, feats)
		m.SpMM(got, x)
		if !dense.EqualWithin(got, want, 0) {
			t.Fatalf("SELL SpMM differs from CSR, max |Δ| = %g", dense.MaxAbsDiff(got, want))
		}
		m.SpMMAdd(got, x)
		for i := range got.Data {
			if got.Data[i] != 2*want.Data[i] {
				t.Fatalf("SELL SpMMAdd accumulation wrong at %d", i)
			}
		}
		bias := make([]float64, feats)
		for j := range bias {
			bias[j] = float64(j%5 - 2)
		}
		wantF := dense.New(rows, feats)
		SpMMBiasReLU(wantF, a, x, bias)
		gotF := dense.New(rows, feats)
		m.SpMMBiasReLU(gotF, x, bias)
		if !dense.EqualWithin(gotF, wantF, 0) {
			t.Fatalf("SELL SpMMBiasReLU differs from CSR, max |Δ| = %g", dense.MaxAbsDiff(gotF, wantF))
		}
	})
}
