package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/dense"
)

// blockedCSR builds a matrix whose nonzeros cluster into dense 4x4 blocks
// along the diagonal — the structure BCSR is built for.
func blockedCSR(rng *rand.Rand, blocks int) *CSR {
	n := blocks * 4
	var entries []Coord
	for b := 0; b < blocks; b++ {
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				entries = append(entries, Coord{Row: b*4 + r, Col: b*4 + c, Val: rng.NormFloat64() + 3})
			}
		}
	}
	return NewCSR(n, n, entries)
}

// skewedCSR builds a matrix with a power-law-ish degree distribution: a few
// very heavy rows, most rows light — the regime SELL-C-σ targets.
func skewedCSR(rng *rand.Rand, rows, cols int) *CSR {
	var entries []Coord
	for i := 0; i < rows; i++ {
		deg := 2
		switch {
		case i%97 == 0:
			deg = cols / 2
		case i%13 == 0:
			deg = 24
		}
		for k := 0; k < deg; k++ {
			entries = append(entries, Coord{Row: i, Col: rng.Intn(cols), Val: rng.Float64() + 0.5})
		}
	}
	return NewCSR(rows, cols, entries)
}

func TestFormatsMatchCSRBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		a    *CSR
	}{
		{"random", randomCSR(rng, 150, 130, 0.06)},
		{"blocked", blockedCSR(rng, 40)},
		{"skewed", skewedCSR(rng, 200, 64)},
	} {
		for _, feats := range []int{1, 7, 32} {
			x := randomMatrix(rng, tc.a.Cols, feats)
			want := dense.New(tc.a.Rows, feats)
			SpMM(want, tc.a, x)

			bcsr := BCSRFromCSR(tc.a, 4, 4)
			got := dense.New(tc.a.Rows, feats)
			bcsr.SpMM(got, x)
			if !dense.EqualWithin(got, want, 0) {
				t.Errorf("%s/f=%d: BCSR SpMM differs, max |Δ| = %g", tc.name, feats, dense.MaxAbsDiff(got, want))
			}

			sell := SELLFromCSR(tc.a, 8, 64)
			got2 := dense.New(tc.a.Rows, feats)
			sell.SpMM(got2, x)
			if !dense.EqualWithin(got2, want, 0) {
				t.Errorf("%s/f=%d: SELL SpMM differs, max |Δ| = %g", tc.name, feats, dense.MaxAbsDiff(got2, want))
			}
		}
		if rt := BCSRFromCSR(tc.a, 3, 5).ToCSR(); !Equal(rt, tc.a, 0) {
			t.Errorf("%s: BCSR round-trip differs", tc.name)
		}
		if rt := SELLFromCSR(tc.a, 8, 64).ToCSR(); !Equal(rt, tc.a, 0) {
			t.Errorf("%s: SELL round-trip differs", tc.name)
		}
	}
}

// TestFormatsParallelBitIdentical checks that the format kernels stay
// bit-identical to themselves across backends (each output row owned by one
// worker).
func TestFormatsParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := skewedCSR(rng, 300, 120)
	x := randomMatrix(rng, 120, 16)
	bcsr := BCSRFromCSR(a, 4, 4)
	sell := SELLFromCSR(a, 32, 256)
	withBackends(t, func() *dense.Matrix {
		out := dense.New(300, 16)
		bcsr.SpMM(out, x)
		return out
	}, func(serial, par *dense.Matrix) { requireBitIdentical(t, serial, par) })
	withBackends(t, func() *dense.Matrix {
		out := dense.New(300, 16)
		sell.SpMM(out, x)
		return out
	}, func(serial, par *dense.Matrix) { requireBitIdentical(t, serial, par) })
	withBackends(t, func() *dense.Matrix {
		out := dense.New(300, 16)
		SpMMBiasReLU(out, a, x, nil)
		return out
	}, func(serial, par *dense.Matrix) { requireBitIdentical(t, serial, par) })
}

// TestSpMMBiasReLUMatchesUnfused exercises both the narrow and the
// feature-blocked wide paths of the fused CSR kernel against the unfused
// SpMM + bias + ReLU sequence.
func TestSpMMBiasReLUMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(rng, 100, 90, 0.08)
	for _, feats := range []int{5, 64, 300} { // 300 > spmmFeatureBlock
		x := randomMatrix(rng, 90, feats)
		bias := make([]float64, feats)
		for j := range bias {
			bias[j] = rng.NormFloat64()
		}
		want := dense.New(100, feats)
		SpMM(want, a, x)
		for i := 0; i < want.Rows; i++ {
			row := want.Row(i)
			for j := range row {
				if v := row[j] + bias[j]; v > 0 {
					row[j] = v
				} else {
					row[j] = 0
				}
			}
		}
		got := dense.New(100, feats)
		SpMMBiasReLU(got, a, x, bias)
		if !dense.EqualWithin(got, want, 0) {
			t.Errorf("f=%d: fused differs from unfused, max |Δ| = %g", feats, dense.MaxAbsDiff(got, want))
		}
		// nil bias = plain SpMM + ReLU.
		want2 := dense.New(100, feats)
		SpMM(want2, a, x)
		dense.ReLUForwardOf(want2, want2)
		got2 := dense.New(100, feats)
		SpMMBiasReLU(got2, a, x, nil)
		if !dense.EqualWithin(got2, want2, 0) {
			t.Errorf("f=%d: nil-bias fused differs, max |Δ| = %g", feats, dense.MaxAbsDiff(got2, want2))
		}
	}
}

func TestSelectKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))

	// Dense 4x4 blocks, >4096 nnz -> block fill 1.0 -> bcsr.
	blocked := blockedCSR(rng, 260) // 260 blocks * 16 = 4160 nnz
	k, stats := SelectKernel(blocked, 32, FormatAuto)
	if k.Format() != FormatBCSR {
		t.Errorf("blocked graph selected %s (fill %.2f), want bcsr", k.Format(), stats.BlockFill)
	}
	if stats.BlockFill < 0.99 {
		t.Errorf("blocked graph fill %.2f, want ~1", stats.BlockFill)
	}

	// Heavy degree skew, low block fill -> sell.
	skewed := skewedCSR(rng, 1200, 600)
	k, stats = SelectKernel(skewed, 32, FormatAuto)
	if k.Format() != FormatSELL {
		t.Errorf("skewed graph selected %s (cv %.2f, fill %.2f), want sell", k.Format(), stats.DegreeCV, stats.BlockFill)
	}

	// Tiny matrix always stays CSR.
	tiny := randomCSR(rng, 40, 40, 0.1)
	if k, _ := SelectKernel(tiny, 32, FormatAuto); k.Format() != FormatCSR {
		t.Errorf("tiny graph selected %s, want csr", k.Format())
	}

	// Explicit override wins over the heuristic.
	if k, _ := SelectKernel(tiny, 32, FormatSELL); k.Format() != FormatSELL {
		t.Errorf("override sell ignored, got %s", k.Format())
	}
	if k, _ := SelectKernel(blocked, 32, FormatCSR); k.Format() != FormatCSR {
		t.Errorf("override csr ignored, got %s", k.Format())
	}

	// Every kernel computes the same product.
	x := randomMatrix(rng, skewed.Cols, 8)
	want := dense.New(skewed.Rows, 8)
	SpMM(want, skewed, x)
	for _, f := range []Format{FormatCSR, FormatBCSR, FormatSELL} {
		k, _ := SelectKernel(skewed, 8, f)
		got := dense.New(skewed.Rows, 8)
		k.SpMM(got, x)
		if !dense.EqualWithin(got, want, 0) {
			t.Errorf("%s kernel differs from CSR, max |Δ| = %g", f, dense.MaxAbsDiff(got, want))
		}
	}

	// ParseFormat accepts the four names and rejects junk.
	for _, s := range []string{"auto", "csr", "bcsr", "sell"} {
		if _, err := ParseFormat(s); err != nil {
			t.Errorf("ParseFormat(%q): %v", s, err)
		}
	}
	if _, err := ParseFormat("ellpack"); err == nil {
		t.Error("ParseFormat accepted unknown format")
	}
}
