package sparse

import (
	"testing"

	"repro/internal/dense"
)

// The fuzz layer checks the CSR kernel invariants on arbitrary inputs.
// Nonzero and dense values are decoded to small integers, so every
// reference computation is exact and comparisons are bitwise — a
// mismatch is a real structural bug, never float noise.
//
// Run as fuzzers with
//
//	go test ./internal/sparse -run '^$' -fuzz FuzzCSRFromCOO -fuzztime 10s
//
// (one -fuzz target per invocation); under plain go test each target
// replays its seed corpus as a regular test.

// cooFromBytes decodes a byte stream into coordinate entries over a
// rows x cols matrix, three bytes per entry, values in [-7, 7].
func cooFromBytes(data []byte, rows, cols int) []Coord {
	var out []Coord
	for i := 0; i+2 < len(data); i += 3 {
		out = append(out, Coord{
			Row: int(data[i]) % rows,
			Col: int(data[i+1]) % cols,
			Val: float64(int(data[i+2]%15) - 7),
		})
	}
	return out
}

// dim clamps a fuzzed byte to a usable dimension in [1, 24].
func dim(b byte) int { return 1 + int(b)%24 }

// FuzzCSRFromCOO checks the COO→CSR construction invariants: valid,
// strictly sorted CSR structure; exact duplicate summation against a
// dense reference; Entries/NewCSR and Transpose/Transpose round-trips;
// and full-range ExtractBlock identity.
func FuzzCSRFromCOO(f *testing.F) {
	f.Add([]byte{}, byte(1), byte(1))
	f.Add([]byte{0, 0, 1, 0, 0, 2, 3, 4, 5}, byte(4), byte(6))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, byte(5), byte(5))
	f.Add([]byte{255, 255, 255, 0, 128, 64, 9, 9, 9, 9, 9, 9}, byte(24), byte(24))
	f.Fuzz(func(t *testing.T, data []byte, rb, cb byte) {
		rows, cols := dim(rb), dim(cb)
		entries := cooFromBytes(data, rows, cols)
		m := NewCSR(rows, cols, entries)

		// Structural invariants.
		if len(m.RowPtr) != rows+1 || m.RowPtr[0] != 0 || m.RowPtr[rows] != m.NNZ() {
			t.Fatalf("bad RowPtr frame: len %d, first %d, last %d, nnz %d",
				len(m.RowPtr), m.RowPtr[0], m.RowPtr[rows], m.NNZ())
		}
		for i := 0; i < rows; i++ {
			if m.RowPtr[i] > m.RowPtr[i+1] {
				t.Fatalf("RowPtr decreases at row %d", i)
			}
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				if m.ColIdx[k] < 0 || m.ColIdx[k] >= cols {
					t.Fatalf("column %d out of range at row %d", m.ColIdx[k], i)
				}
				if k > m.RowPtr[i] && m.ColIdx[k] <= m.ColIdx[k-1] {
					t.Fatalf("columns not strictly increasing in row %d", i)
				}
			}
		}

		// Exact duplicate summation against a dense reference (integer
		// values, so addition order cannot matter).
		ref := dense.New(rows, cols)
		for _, e := range entries {
			ref.Set(e.Row, e.Col, ref.At(e.Row, e.Col)+e.Val)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if got, want := m.At(i, j), ref.At(i, j); got != want {
					t.Fatalf("At(%d,%d) = %g, want %g", i, j, got, want)
				}
			}
		}

		// NewCSR(Entries()) is the identity. Note stored zeros (duplicates
		// canceling to 0) survive both directions.
		if rt := NewCSR(rows, cols, m.Entries()); !Equal(m, rt, 0) {
			t.Fatal("Entries→NewCSR round-trip differs")
		}
		// Transpose is an involution.
		if tt := m.Transpose().Transpose(); !Equal(m, tt, 0) {
			t.Fatal("double transpose differs")
		}
		// Extracting the full range is the identity.
		if blk := m.ExtractBlock(0, rows, 0, cols); !Equal(m, blk, 0) {
			t.Fatal("full-range ExtractBlock differs")
		}
	})
}

// FuzzTransposePlan checks that a TransposePlan's gather product is
// bit-identical to the search-based SpMMT kernel and invariant under
// the chunk count, and that SpMMTAdd accumulates exactly.
func FuzzTransposePlan(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 1, 2}, byte(3), byte(4), byte(2), byte(3))
	f.Add([]byte{5, 5, 5, 1, 2, 3, 9, 8, 7}, byte(8), byte(8), byte(3), byte(1))
	f.Add([]byte{}, byte(1), byte(6), byte(1), byte(7))
	f.Fuzz(func(t *testing.T, data []byte, rb, cb, fb, chunkb byte) {
		rows, cols := dim(rb), dim(cb)
		feats := 1 + int(fb)%6
		chunks := 1 + int(chunkb)%8
		a := NewCSR(rows, cols, cooFromBytes(data, rows, cols))
		x := dense.New(rows, feats)
		for i := range x.Data {
			b := byte(0)
			if len(data) > 0 {
				b = data[i%len(data)]
			}
			x.Data[i] = float64(int(b%9) - 4)
		}

		want := dense.New(cols, feats)
		SpMMT(want, a, x)

		plan := NewTransposePlanChunks(a, chunks)
		if plan.Rows() != rows || plan.Cols() != cols {
			t.Fatalf("plan dims %dx%d, want %dx%d", plan.Rows(), plan.Cols(), rows, cols)
		}
		got := dense.New(cols, feats)
		plan.SpMMT(got, x)
		if !dense.EqualWithin(got, want, 0) {
			t.Fatalf("plan SpMMT differs from kernel, max |Δ| = %g", dense.MaxAbsDiff(got, want))
		}
		// The chunk count balances work; it must never change the result.
		single := NewTransposePlanChunks(a, 1)
		got2 := dense.New(cols, feats)
		single.SpMMT(got2, x)
		if !dense.EqualWithin(got2, got, 0) {
			t.Fatal("plan result depends on chunk count")
		}
		// SpMMTAdd on top of a prior product doubles it exactly.
		plan.SpMMTAdd(got, x)
		for i := range got.Data {
			if got.Data[i] != 2*want.Data[i] {
				t.Fatalf("SpMMTAdd accumulation wrong at %d: %g, want %g",
					i, got.Data[i], 2*want.Data[i])
			}
		}
	})
}

// FuzzHaloPlan checks the halo machinery: ColSupport/CompactCols agree,
// every compacted block re-expands onto its Need list to reproduce the
// original matrix exactly, and the skip block passes through
// uncompacted.
func FuzzHaloPlan(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 3, 2, 2, 5, 3}, byte(4), byte(6), byte(2), byte(0), byte(7))
	f.Add([]byte{9, 9, 9}, byte(1), byte(1), byte(1), byte(1), byte(0))
	f.Add([]byte{1, 0, 1, 2, 1, 2, 3, 2, 3, 4, 3, 4}, byte(6), byte(12), byte(4), byte(2), byte(3))
	f.Fuzz(func(t *testing.T, data []byte, rb, cb, pb, skipb byte, cutb byte) {
		rows, cols := dim(rb), dim(cb)
		p := 1 + int(pb)%4
		at := NewCSR(rows, cols, cooFromBytes(data, rows, cols))

		// Derive a non-decreasing column tiling from the cut byte.
		offsets := make([]int, p+1)
		offsets[p] = cols
		for j := 1; j < p; j++ {
			lo := offsets[j-1]
			offsets[j] = lo + (int(cutb)+j*int(rb+1))%(cols-lo+1)
		}
		skip := int(skipb)%(p+1) - 1 // -1 = compact everything

		plan := BuildHaloPlan(at, offsets, skip)
		if len(plan.Need) != p || len(plan.Blocks) != p {
			t.Fatalf("plan has %d/%d blocks, want %d", len(plan.Need), len(plan.Blocks), p)
		}

		var rebuilt []Coord
		for j := 0; j < p; j++ {
			blk := plan.Blocks[j]
			width := offsets[j+1] - offsets[j]
			if j == skip {
				// Uncompacted pass-through: the raw extracted block.
				if want := at.ExtractBlock(0, rows, offsets[j], offsets[j+1]); !Equal(blk, want, 0) {
					t.Fatalf("skip block %d modified", j)
				}
				if plan.Need[j] != nil {
					t.Fatalf("skip block %d has a fetch list", j)
				}
				for _, e := range blk.Entries() {
					rebuilt = append(rebuilt, Coord{Row: e.Row, Col: offsets[j] + e.Col, Val: e.Val})
				}
				continue
			}
			// The fetch list is exactly the block's column support, sorted
			// strictly ascending within the block width.
			support := ColSupport(at, offsets[j], offsets[j+1])
			if len(plan.Need[j]) != len(support) {
				t.Fatalf("block %d Need has %d entries, support %d", j, len(plan.Need[j]), len(support))
			}
			for k := range support {
				if plan.Need[j][k] != support[k] {
					t.Fatalf("block %d Need[%d] = %d, want %d", j, k, plan.Need[j][k], support[k])
				}
				if support[k] < 0 || support[k] >= width {
					t.Fatalf("block %d support %d outside width %d", j, support[k], width)
				}
				if k > 0 && support[k] <= support[k-1] {
					t.Fatalf("block %d support not strictly increasing", j)
				}
			}
			if blk.Cols != len(support) {
				t.Fatalf("block %d compacted to %d columns, support %d", j, blk.Cols, len(support))
			}
			// Re-expand the compacted block through Need back to global
			// columns.
			for _, e := range blk.Entries() {
				rebuilt = append(rebuilt, Coord{Row: e.Row, Col: offsets[j] + plan.Need[j][e.Col], Val: e.Val})
			}
		}
		if recon := NewCSR(rows, cols, rebuilt); !Equal(recon, at, 0) {
			t.Fatal("blocks do not reassemble the original matrix")
		}

		// CompactCols round-trip on the whole matrix.
		support, compact := CompactCols(at)
		var expanded []Coord
		for _, e := range compact.Entries() {
			expanded = append(expanded, Coord{Row: e.Row, Col: support[e.Col], Val: e.Val})
		}
		if recon := NewCSR(rows, cols, expanded); !Equal(recon, at, 0) {
			t.Fatal("CompactCols expansion differs from original")
		}
	})
}
