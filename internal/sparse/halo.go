package sparse

import "fmt"

// This file implements the sparsity-aware halo machinery of §IV-A-1: a 1D
// block-row rank does not need whole remote feature blocks — only the rows
// whose columns actually appear in its local adjacency block. ColSupport
// and CompactCols extract that column support from CSR blocks;
// BuildHaloPlan assembles the per-peer fetch lists and the column-compacted
// adjacency blocks a trainer multiplies against the fetched rows.

// ColSupport returns the sorted distinct column indices in [c0, c1) that
// carry at least one nonzero of m, expressed relative to c0. It is the set
// of remote feature rows a rank owning m must fetch from the block
// [c0, c1) — the per-peer building block of edgecut_P(A) (§IV-A-1).
func ColSupport(m *CSR, c0, c1 int) []int {
	if c0 < 0 || c1 > m.Cols || c0 > c1 {
		panic(fmt.Sprintf("sparse: ColSupport [%d:%d) out of range for %d columns", c0, c1, m.Cols))
	}
	mark := make([]bool, c1-c0)
	for _, c := range m.ColIdx {
		if c >= c0 && c < c1 {
			mark[c-c0] = true
		}
	}
	support := make([]int, 0, len(mark))
	for c, hit := range mark {
		if hit {
			support = append(support, c)
		}
	}
	return support
}

// CompactCols drops m's empty columns: it returns the sorted support (the
// column indices with at least one nonzero) and a copy of m re-indexed
// onto it, with Cols = len(support). Column k of the compaction is column
// support[k] of m; nonzero order within each row is preserved, so SpMM
// against row-gathered dense inputs accumulates in exactly the original
// floating-point order.
func CompactCols(m *CSR) ([]int, *CSR) {
	support := ColSupport(m, 0, m.Cols)
	remap := make([]int, m.Cols)
	for k, c := range support {
		remap[c] = k
	}
	out := &CSR{
		Rows:   m.Rows,
		Cols:   len(support),
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: make([]int, m.NNZ()),
		Val:    append([]float64(nil), m.Val...),
	}
	for k, c := range m.ColIdx {
		out.ColIdx[k] = remap[c]
	}
	return support, out
}

// HaloPlan is a rank's reusable halo-exchange plan: which remote rows it
// must fetch from each peer's block, and the column-compacted adjacency
// blocks to multiply against the fetched rows. Built once before training,
// it turns every per-epoch dense broadcast (≈ n·f words) into indexed
// point-to-point fetches (edgecut·f words).
type HaloPlan struct {
	// Need[j] lists, sorted ascending and relative to block j's offset,
	// the columns of block j that carry at least one nonzero — the rows
	// the owner must fetch from peer j. len(Need) is the block count.
	Need [][]int
	// Blocks[j] is the owner's rows restricted to block j's columns and
	// compacted onto Need[j]: column k of Blocks[j] is global column
	// offsets[j] + Need[j][k]. Multiplying Blocks[j] against the fetched
	// rows reproduces the full-block product bit for bit.
	Blocks []*CSR
}

// BuildHaloPlan computes the halo plan of the row block at — a rank's
// local rows over the global column space — against the contiguous column
// blocking given by offsets: block j owns columns [offsets[j],
// offsets[j+1]), so len(offsets) is the block count plus one, offsets[0]
// must be 0, and offsets[len-1] must equal at.Cols.
//
// skip names one block to leave uncompacted (commonly the owner's own
// block, which multiplies local data directly and needs no fetch list):
// its Need entry stays nil and its Blocks entry keeps the original column
// space. Pass -1 to compact every block.
func BuildHaloPlan(at *CSR, offsets []int, skip int) *HaloPlan {
	p := len(offsets) - 1
	if p < 1 || offsets[0] != 0 || offsets[p] != at.Cols {
		panic(fmt.Sprintf("sparse: halo offsets %v do not tile %d columns", offsets, at.Cols))
	}
	plan := &HaloPlan{Need: make([][]int, p), Blocks: make([]*CSR, p)}
	for j := 0; j < p; j++ {
		if offsets[j] > offsets[j+1] {
			panic(fmt.Sprintf("sparse: halo offsets %v decrease at block %d", offsets, j))
		}
		blk := at.ExtractBlock(0, at.Rows, offsets[j], offsets[j+1])
		if j == skip {
			plan.Blocks[j] = blk
			continue
		}
		plan.Need[j], plan.Blocks[j] = CompactCols(blk)
	}
	return plan
}

// ReorderSym applies the symmetric permutation given by order (order[new]
// = old) to the square matrix m: entry (i, j) of the result equals
// m[order[i]][order[j]]. It relabels a graph's vertices so a partitioner's
// parts become contiguous index blocks.
func ReorderSym(m *CSR, order []int) *CSR {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("sparse: ReorderSym needs a square matrix, got %dx%d", m.Rows, m.Cols))
	}
	if len(order) != m.Rows {
		panic(fmt.Sprintf("sparse: ReorderSym order covers %d of %d rows", len(order), m.Rows))
	}
	inv := make([]int, len(order))
	for i := range inv {
		inv[i] = -1
	}
	for newIdx, oldIdx := range order {
		if oldIdx < 0 || oldIdx >= len(order) || inv[oldIdx] != -1 {
			panic(fmt.Sprintf("sparse: ReorderSym order is not a permutation at %d", newIdx))
		}
		inv[oldIdx] = newIdx
	}
	entries := make([]Coord, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			entries = append(entries, Coord{Row: inv[i], Col: inv[m.ColIdx[k]], Val: m.Val[k]})
		}
	}
	return NewCSR(m.Rows, m.Cols, entries)
}
