package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/dense"
)

// randomPattern builds a CSR with each cell nonzero with probability
// density — including, at low densities, fully empty rows and columns.
func randomPattern(rows, cols int, density float64, rng *rand.Rand) *CSR {
	var entries []Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				entries = append(entries, Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return NewCSR(rows, cols, entries)
}

// denseColSupport is the brute-force reference: columns of [c0, c1) with
// any nonzero in the dense materialization.
func denseColSupport(m *CSR, c0, c1 int) []int {
	d := m.ToDense()
	support := []int{}
	for c := c0; c < c1; c++ {
		for i := 0; i < m.Rows; i++ {
			if d.At(i, c) != 0 {
				support = append(support, c-c0)
				break
			}
		}
	}
	return support
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestColSupportMatchesDenseReference is the randomized property test:
// over random sparsity patterns (including very sparse ones with empty
// rows and columns) and random column windows, ColSupport must agree with
// the brute-force dense reference.
func TestColSupportMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		density := []float64{0, 0.05, 0.3, 0.9}[rng.Intn(4)]
		m := randomPattern(rows, cols, density, rng)
		c0 := rng.Intn(cols + 1)
		c1 := c0 + rng.Intn(cols+1-c0)
		got := ColSupport(m, c0, c1)
		want := denseColSupport(m, c0, c1)
		if !intsEqual(got, want) {
			t.Fatalf("trial %d (%dx%d d=%.2f [%d:%d)): support %v, want %v",
				trial, rows, cols, density, c0, c1, got, want)
		}
	}
}

// TestCompactColsRoundTrip: compaction preserves every nonzero at its
// support-mapped column and drops only empty columns.
func TestCompactColsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		m := randomPattern(1+rng.Intn(10), 1+rng.Intn(10), 0.2, rng)
		support, compact := CompactCols(m)
		if compact.Cols != len(support) || compact.NNZ() != m.NNZ() || compact.Rows != m.Rows {
			t.Fatalf("compact shape %dx%d nnz %d vs support %d, m nnz %d",
				compact.Rows, compact.Cols, compact.NNZ(), len(support), m.NNZ())
		}
		for i := 0; i < m.Rows; i++ {
			for k := compact.RowPtr[i]; k < compact.RowPtr[i+1]; k++ {
				orig := support[compact.ColIdx[k]]
				if m.At(i, orig) != compact.Val[k] {
					t.Fatalf("entry (%d,%d) maps to (%d,%d) with value %v, want %v",
						i, compact.ColIdx[k], i, orig, compact.Val[k], m.At(i, orig))
				}
			}
		}
		// Every support column must really be non-empty.
		for k := range support {
			found := false
			for _, c := range compact.ColIdx {
				if c == k {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("support column %d has no nonzero", k)
			}
		}
	}
}

// TestBuildHaloPlanMatchesDenseSpMM is the end-to-end halo property: for
// random matrices, random contiguous blockings (including empty blocks
// and the single-block P=1 edge case), multiplying the compacted blocks
// against the support-gathered rows of X must reproduce the full product.
func TestBuildHaloPlanMatchesDenseSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 100; trial++ {
		rows, n, f := 1+rng.Intn(10), 1+rng.Intn(16), 1+rng.Intn(5)
		at := randomPattern(rows, n, 0.15, rng)
		// Random partition of [0, n) into p blocks, empty blocks allowed.
		p := 1 + rng.Intn(4)
		offsets := make([]int, p+1)
		offsets[p] = n
		for j := 1; j < p; j++ {
			offsets[j] = rng.Intn(n + 1)
		}
		for j := 1; j < p; j++ { // sort boundaries
			for i := j; i > 0 && offsets[i] < offsets[i-1]; i-- {
				offsets[i], offsets[i-1] = offsets[i-1], offsets[i]
			}
		}
		plan := BuildHaloPlan(at, offsets, -1)

		x := dense.New(n, f)
		x.RandomInit(rng, 1.0)
		want := dense.New(rows, f)
		SpMM(want, at, x)

		got := dense.New(rows, f)
		for j := 0; j < p; j++ {
			xj := dense.New(len(plan.Need[j]), f)
			for k, c := range plan.Need[j] {
				copy(xj.Row(k), x.Row(offsets[j]+c))
			}
			SpMMAdd(got, plan.Blocks[j], xj)
		}
		if d := dense.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("trial %d: halo-plan product deviates by %v", trial, d)
		}
	}
}

// TestBuildHaloPlanEdgeCases pins the corner cases the randomized test
// may miss: an all-zero matrix needs nothing from anyone, and a
// single-block (1-rank) plan covers the whole column space.
func TestBuildHaloPlanEdgeCases(t *testing.T) {
	empty := NewCSR(4, 6, nil)
	plan := BuildHaloPlan(empty, []int{0, 3, 6}, -1)
	for j, need := range plan.Need {
		if len(need) != 0 || plan.Blocks[j].NNZ() != 0 {
			t.Fatalf("empty matrix requests %v from block %d", need, j)
		}
	}
	m := NewCSR(2, 3, []Coord{{Row: 0, Col: 2, Val: 1}, {Row: 1, Col: 0, Val: 2}})
	plan = BuildHaloPlan(m, []int{0, 3}, -1) // single rank
	if !intsEqual(plan.Need[0], []int{0, 2}) {
		t.Fatalf("single-block support = %v, want [0 2]", plan.Need[0])
	}
	if plan.Blocks[0].Cols != 2 {
		t.Fatalf("single-block compaction has %d cols, want 2", plan.Blocks[0].Cols)
	}
	// A skipped block keeps its original column space and no fetch list.
	plan = BuildHaloPlan(m, []int{0, 2, 3}, 0)
	if plan.Need[0] != nil || plan.Blocks[0].Cols != 2 {
		t.Fatalf("skipped block compacted: need %v, cols %d", plan.Need[0], plan.Blocks[0].Cols)
	}
	if !intsEqual(plan.Need[1], []int{0}) || plan.Blocks[1].Cols != 1 {
		t.Fatalf("non-skipped block mishandled: need %v", plan.Need[1])
	}
}

// TestReorderSym: the symmetric permutation property B[i][j] =
// m[order[i]][order[j]] on random square matrices.
func TestReorderSym(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		m := randomPattern(n, n, 0.25, rng)
		order := rng.Perm(n)
		b := ReorderSym(m, order)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if b.At(i, j) != m.At(order[i], order[j]) {
					t.Fatalf("B[%d][%d] = %v, want m[%d][%d] = %v",
						i, j, b.At(i, j), order[i], order[j], m.At(order[i], order[j]))
				}
			}
		}
	}
}
