package sparse

import (
	"fmt"
	"math"
)

// NormalizeSymmetric returns D^{-1/2} (A + I) D^{-1/2}, the symmetric
// normalization with self-loops from Kipf & Welling that the paper uses as
// its "modified adjacency matrix" (§III-B). D is the diagonal degree matrix
// of A + I. Vertices that remain isolated after adding the self-loop cannot
// occur (the self-loop guarantees degree ≥ 1).
func NormalizeSymmetric(a *CSR) *CSR {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: NormalizeSymmetric needs a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	entries := a.Entries()
	// Add self-loops, relying on NewCSR to merge duplicates.
	for i := 0; i < n; i++ {
		entries = append(entries, Coord{Row: i, Col: i, Val: 1})
	}
	ai := NewCSR(n, n, entries)
	// Modified degrees: row sums of A + I.
	dinv := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for k := ai.RowPtr[i]; k < ai.RowPtr[i+1]; k++ {
			s += ai.Val[k]
		}
		dinv[i] = 1 / math.Sqrt(s)
	}
	for i := 0; i < n; i++ {
		for k := ai.RowPtr[i]; k < ai.RowPtr[i+1]; k++ {
			ai.Val[k] *= dinv[i] * dinv[ai.ColIdx[k]]
		}
	}
	return ai
}

// RowStochastic returns D^{-1} A: each row scaled to sum to one. Rows with
// no nonzeros are left as zero rows. This is the alternative "mean
// aggregator" normalization common in GraphSAGE-style models.
func RowStochastic(a *CSR) *CSR {
	out := a.Clone()
	for i := 0; i < out.Rows; i++ {
		var s float64
		for k := out.RowPtr[i]; k < out.RowPtr[i+1]; k++ {
			s += out.Val[k]
		}
		if s == 0 {
			continue
		}
		inv := 1 / s
		for k := out.RowPtr[i]; k < out.RowPtr[i+1]; k++ {
			out.Val[k] *= inv
		}
	}
	return out
}
