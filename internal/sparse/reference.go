package sparse

import "repro/internal/dense"

// Reference kernels: the one-nonzero-at-a-time SpMM loops the fused
// four-entry sweeps (axpyEntryRun) replaced. Like the dense reference
// kernels they serve as the kernel-sweep Speedup baseline and as the
// bit-identity oracle for the optimized default path, and they always run
// serially regardless of the parallel backend.

// RefSpMM computes dst = a * x with the reference kernel: per CSR row, one
// AxpyRow per stored entry, feature-blocked for wide operands exactly like
// the optimized loop. dst is overwritten.
func RefSpMM(dst *dense.Matrix, a *CSR, x *dense.Matrix) {
	checkSpMM(dst, a, x, "RefSpMM")
	dst.Zero()
	f := x.Cols
	if f <= spmmFeatureBlock {
		for i := 0; i < a.Rows; i++ {
			drow := dst.Data[i*f : (i+1)*f]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				dense.AxpyRow(drow, a.Val[k], x.Data[a.ColIdx[k]*f:(a.ColIdx[k]+1)*f])
			}
		}
		return
	}
	for i0 := 0; i0 < a.Rows; i0 += spmmRowBlock {
		i1 := min(i0+spmmRowBlock, a.Rows)
		for j0 := 0; j0 < f; j0 += spmmFeatureBlock {
			j1 := min(j0+spmmFeatureBlock, f)
			for i := i0; i < i1; i++ {
				drow := dst.Data[i*f+j0 : i*f+j1]
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					dense.AxpyRow(drow, a.Val[k], x.Data[a.ColIdx[k]*f+j0:a.ColIdx[k]*f+j1])
				}
			}
		}
	}
}

// RefSpMMT computes dst = aᵀ * x for the planned a with the reference
// gather: per output row, one AxpyRow per plan entry in plan order. dst is
// overwritten.
func (p *TransposePlan) RefSpMMT(dst, x *dense.Matrix) {
	p.check(dst, x, "TransposePlan.RefSpMMT")
	dst.Zero()
	f := x.Cols
	for c := 0; c < p.cols; c++ {
		drow := dst.Data[c*f : (c+1)*f]
		for k := p.colPtr[c]; k < p.colPtr[c+1]; k++ {
			dense.AxpyRow(drow, p.val[k], x.Data[p.srcRow[k]*f:(p.srcRow[k]+1)*f])
		}
	}
}
