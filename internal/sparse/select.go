package sparse

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/dense"
)

// Format names a sparse storage format for the kernel dispatch layer.
type Format string

const (
	// FormatAuto lets the cost model pick per graph.
	FormatAuto Format = "auto"
	// FormatCSR is compressed sparse row — the default, and the reference
	// every other format's kernel is bit-identical to.
	FormatCSR Format = "csr"
	// FormatBCSR is block CSR with fixed dense blocks.
	FormatBCSR Format = "bcsr"
	// FormatSELL is SELL-C-σ (sorted sliced ELLPACK).
	FormatSELL Format = "sell"
)

// ParseFormat validates a format name from a flag or config.
func ParseFormat(s string) (Format, error) {
	switch f := Format(s); f {
	case FormatAuto, FormatCSR, FormatBCSR, FormatSELL:
		return f, nil
	case "":
		return FormatCSR, nil
	default:
		return "", fmt.Errorf("sparse: unknown format %q (want auto, csr, bcsr, or sell)", s)
	}
}

// Default structural parameters of the specialized formats. 4×4 BCSR
// blocks keep padding bounded while making the inner loop stream 4
// consecutive x rows; SELL slices of 32 rows sorted in 256-row windows
// follow the C ≈ SIMD-width-multiple, σ ≫ C guidance from the SELL-C-σ
// literature while keeping the permutation local.
const (
	bcsrBlockRows   = 4
	bcsrBlockCols   = 4
	sellSliceHeight = 32
	sellSortWindow  = 256
)

// KernelOf is a format-erased SpMM handle: the dispatch layer builds one
// per sparse operand, and callers multiply through it without knowing the
// storage layout. All implementations are bit-identical to the CSR
// kernels for matrices without explicit stored zeros.
type KernelOf[T dense.Elem] interface {
	// Format reports the storage format behind the kernel.
	Format() Format
	// SpMM computes dst = A·x (dst overwritten).
	SpMM(dst, x *dense.Of[T])
	// SpMMAdd computes dst += A·x.
	SpMMAdd(dst, x *dense.Of[T])
	// SpMMBiasReLU computes dst = relu(A·x + bias) with the epilogue fused
	// into the accumulation sweep. bias may be nil.
	SpMMBiasReLU(dst, x *dense.Of[T], bias []T)
}

// Kernel is the float64 kernel handle used by the default training path.
type Kernel = KernelOf[float64]

// Stats computes the format-selection statistics of a against a dense
// operand of denseCols columns. BlockFill is measured for the default BCSR
// block size.
func Stats[T dense.Elem](a *CSROf[T], denseCols int) costmodel.SparsityStats {
	s := costmodel.SparsityStats{
		Rows: a.Rows, Cols: a.Cols,
		NNZ:       int64(a.NNZ()),
		AvgDegree: a.AvgDegree(),
		DenseCols: denseCols,
	}
	var sum, sumSq float64
	for i := 0; i < a.Rows; i++ {
		d := float64(a.RowNNZ(i))
		sum += d
		sumSq += d * d
	}
	s.DegreeCV = costmodel.DegreeCV(a.Rows, sum, sumSq)
	if blocks := storedBlocks(a, bcsrBlockRows, bcsrBlockCols); blocks > 0 {
		s.BlockFill = float64(a.NNZ()) / float64(blocks*bcsrBlockRows*bcsrBlockCols)
	}
	return s
}

// storedBlocks counts the br×bc blocks BCSRFromCSR would store — the
// denominator of the block fill ratio — without building the format.
func storedBlocks[T dense.Elem](a *CSROf[T], br, bc int) int {
	nbc := (a.Cols + bc - 1) / bc
	seen := make([]int, nbc)
	blocks := 0
	for I := 0; I*br < a.Rows; I++ {
		r1 := min((I+1)*br, a.Rows)
		for i := I * br; i < r1; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if J := a.ColIdx[k] / bc; seen[J] != I+1 {
					seen[J] = I + 1
					blocks++
				}
			}
		}
	}
	return blocks
}

// SelectKernel builds the SpMM kernel for a: with override FormatAuto (or
// empty) the cost model chooses from the matrix statistics, otherwise the
// named format is built unconditionally. The returned stats record what
// the decision was based on.
func SelectKernel[T dense.Elem](a *CSROf[T], denseCols int, override Format) (KernelOf[T], costmodel.SparsityStats) {
	stats := Stats(a, denseCols)
	f := override
	if f == "" || f == FormatAuto {
		f = Format(costmodel.ChooseFormat(stats))
	}
	switch f {
	case FormatBCSR:
		return bcsrKernel[T]{BCSRFromCSR(a, bcsrBlockRows, bcsrBlockCols)}, stats
	case FormatSELL:
		return sellKernel[T]{SELLFromCSR(a, sellSliceHeight, sellSortWindow)}, stats
	default:
		return csrKernel[T]{a}, stats
	}
}

type csrKernel[T dense.Elem] struct{ a *CSROf[T] }

func (k csrKernel[T]) Format() Format              { return FormatCSR }
func (k csrKernel[T]) SpMM(dst, x *dense.Of[T])    { SpMM(dst, k.a, x) }
func (k csrKernel[T]) SpMMAdd(dst, x *dense.Of[T]) { SpMMAdd(dst, k.a, x) }
func (k csrKernel[T]) SpMMBiasReLU(dst, x *dense.Of[T], bias []T) {
	SpMMBiasReLU(dst, k.a, x, bias)
}

type bcsrKernel[T dense.Elem] struct{ m *BCSROf[T] }

func (k bcsrKernel[T]) Format() Format              { return FormatBCSR }
func (k bcsrKernel[T]) SpMM(dst, x *dense.Of[T])    { k.m.SpMM(dst, x) }
func (k bcsrKernel[T]) SpMMAdd(dst, x *dense.Of[T]) { k.m.SpMMAdd(dst, x) }
func (k bcsrKernel[T]) SpMMBiasReLU(dst, x *dense.Of[T], bias []T) {
	k.m.SpMMBiasReLU(dst, x, bias)
}

type sellKernel[T dense.Elem] struct{ m *SELLOf[T] }

func (k sellKernel[T]) Format() Format              { return FormatSELL }
func (k sellKernel[T]) SpMM(dst, x *dense.Of[T])    { k.m.SpMM(dst, x) }
func (k sellKernel[T]) SpMMAdd(dst, x *dense.Of[T]) { k.m.SpMMAdd(dst, x) }
func (k sellKernel[T]) SpMMBiasReLU(dst, x *dense.Of[T], bias []T) {
	k.m.SpMMBiasReLU(dst, x, bias)
}
