package sparse

import (
	"fmt"
	"sort"

	"repro/internal/dense"
	"repro/internal/parallel"
)

// SELLOf is a sparse matrix in SELL-C-σ (sliced ELLPACK) format: rows are
// sorted by descending nonzero count within windows of Sigma rows, grouped
// into slices of C rows, and each slice is stored column-major padded to
// the width of its longest row (padding col 0, value 0).
//
// SELL-C-σ targets graphs with skewed degree distributions, where plain
// row-major CSR leaves short rows with ragged inner loops: sorting within a
// window makes rows sharing a slice similar in length, so padding stays
// small while the column-major slice layout gives the inner loop a fixed
// stride. internal/costmodel.ChooseFormat selects it on high degree
// variance.
type SELLOf[T dense.Elem] struct {
	Rows, Cols int
	C, Sigma   int
	// Perm maps slot s (slice-major position after sorting) to the original
	// row index; PermInv is its inverse. len == Rows rounded up to a
	// multiple of C conceptually, but only Rows entries are stored — slots
	// past Rows in the final slice are pure padding.
	Perm []int
	// SlicePtr has length ceil(Rows/C)+1, in value offsets: slice s
	// occupies ColIdx[SlicePtr[s]:SlicePtr[s+1]] (and Val likewise), laid
	// out column-major: entry (slot r, position w) of the slice lives at
	// SlicePtr[s] + w*rowsInSlice + r.
	SlicePtr []int
	ColIdx   []int
	Val      []T
}

// SELL is the float64 instantiation used by the default training path.
type SELL = SELLOf[float64]

// Slices returns the number of row slices.
func (m *SELLOf[T]) Slices() int { return len(m.SlicePtr) - 1 }

// NNZ returns the number of stored nonzero values (padding excluded).
func (m *SELLOf[T]) NNZ() int {
	n := 0
	for _, v := range m.Val {
		if v != 0 {
			n++
		}
	}
	return n
}

// PaddingRatio returns padded slots / total stored slots — the storage
// overhead the σ-sort is there to minimize.
func (m *SELLOf[T]) PaddingRatio() float64 {
	if len(m.Val) == 0 {
		return 0
	}
	return 1 - float64(m.NNZ())/float64(len(m.Val))
}

// SELLFromCSR converts a to SELL-C-σ. c must be positive; sigma is rounded
// up to a multiple of c (sigma ≤ c means no reordering beyond slicing).
// Within a sort window rows are ordered by descending nonzero count, ties
// kept in original row order, so the conversion is deterministic.
func SELLFromCSR[T dense.Elem](a *CSROf[T], c, sigma int) *SELLOf[T] {
	if c <= 0 {
		panic(fmt.Sprintf("sparse: SELLFromCSR slice height %d", c))
	}
	if sigma < c {
		sigma = c
	}
	if r := sigma % c; r != 0 {
		sigma += c - r
	}
	out := &SELLOf[T]{Rows: a.Rows, Cols: a.Cols, C: c, Sigma: sigma}
	out.Perm = make([]int, a.Rows)
	for i := range out.Perm {
		out.Perm[i] = i
	}
	for w0 := 0; w0 < a.Rows; w0 += sigma {
		w1 := min(w0+sigma, a.Rows)
		win := out.Perm[w0:w1]
		sort.SliceStable(win, func(x, y int) bool {
			return a.RowNNZ(win[x]) > a.RowNNZ(win[y])
		})
	}
	nSlices := (a.Rows + c - 1) / c
	out.SlicePtr = make([]int, nSlices+1)
	for s := 0; s < nSlices; s++ {
		rows := min(c, a.Rows-s*c)
		width := 0
		for r := 0; r < rows; r++ {
			if n := a.RowNNZ(out.Perm[s*c+r]); n > width {
				width = n
			}
		}
		out.SlicePtr[s+1] = out.SlicePtr[s] + width*rows
	}
	out.ColIdx = make([]int, out.SlicePtr[nSlices])
	out.Val = make([]T, out.SlicePtr[nSlices])
	for s := 0; s < nSlices; s++ {
		rows := min(c, a.Rows-s*c)
		base := out.SlicePtr[s]
		for r := 0; r < rows; r++ {
			i := out.Perm[s*c+r]
			for w, k := 0, a.RowPtr[i]; k < a.RowPtr[i+1]; w, k = w+1, k+1 {
				out.ColIdx[base+w*rows+r] = a.ColIdx[k]
				out.Val[base+w*rows+r] = a.Val[k]
			}
		}
	}
	return out
}

// ToCSR converts back to CSR, dropping zero slots (padding). For any input
// without explicit stored zeros, SELLFromCSR followed by ToCSR is the
// identity.
func (m *SELLOf[T]) ToCSR() *CSROf[T] {
	out := &CSROf[T]{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	// Count per original row first so rows come out in CSR order.
	for s := 0; s < m.Slices(); s++ {
		rows := min(m.C, m.Rows-s*m.C)
		base := m.SlicePtr[s]
		width := (m.SlicePtr[s+1] - base) / max(rows, 1)
		for r := 0; r < rows; r++ {
			n := 0
			for w := 0; w < width; w++ {
				if m.Val[base+w*rows+r] != 0 {
					n++
				}
			}
			out.RowPtr[m.Perm[s*m.C+r]+1] = n
		}
	}
	for i := 0; i < m.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	out.ColIdx = make([]int, out.RowPtr[m.Rows])
	out.Val = make([]T, out.RowPtr[m.Rows])
	next := append([]int(nil), out.RowPtr[:m.Rows]...)
	for s := 0; s < m.Slices(); s++ {
		rows := min(m.C, m.Rows-s*m.C)
		base := m.SlicePtr[s]
		width := (m.SlicePtr[s+1] - base) / max(rows, 1)
		for r := 0; r < rows; r++ {
			i := m.Perm[s*m.C+r]
			for w := 0; w < width; w++ {
				if v := m.Val[base+w*rows+r]; v != 0 {
					out.ColIdx[next[i]] = m.ColIdx[base+w*rows+r]
					out.Val[next[i]] = v
					next[i]++
				}
			}
		}
	}
	return out
}

// SpMM computes dst = m * x. dst must be m.Rows x x.Cols and is
// overwritten. Output rows land at their original (unpermuted) indices.
//
// Within a row, stored entries keep CSR's ascending column order (the
// conversion fills positions left to right from the CSR row) and padding
// slots are skipped, so for a fixed output element the accumulation is
// bit-identical to the CSR kernel.
func (m *SELLOf[T]) SpMM(dst, x *dense.Of[T]) {
	m.checkSpMM(dst, x, "SELL.SpMM")
	dst.Zero()
	m.SpMMAdd(dst, x)
}

// SpMMAdd computes dst += m * x.
func (m *SELLOf[T]) SpMMAdd(dst, x *dense.Of[T]) {
	m.checkSpMM(dst, x, "SELL.SpMMAdd")
	work := 2 * int64(len(m.Val)) * int64(x.Cols)
	if parallel.Inline(m.Slices(), work) {
		m.spMMAddSlices(dst, x, nil, false, 0, m.Slices())
		return
	}
	parallel.Rows(m.Slices(), work, func(lo, hi int) {
		m.spMMAddSlices(dst, x, nil, false, lo, hi)
	})
}

// SpMMBiasReLU computes dst = relu(m*x + bias), applying the fused epilogue
// to each slice's rows as soon as their accumulation finishes. bias may be
// nil.
func (m *SELLOf[T]) SpMMBiasReLU(dst, x *dense.Of[T], bias []T) {
	m.checkSpMM(dst, x, "SELL.SpMMBiasReLU")
	dst.Zero()
	work := 2 * int64(len(m.Val)) * int64(x.Cols)
	if parallel.Inline(m.Slices(), work) {
		m.spMMAddSlices(dst, x, bias, true, 0, m.Slices())
		return
	}
	parallel.Rows(m.Slices(), work, func(lo, hi int) {
		m.spMMAddSlices(dst, x, bias, true, lo, hi)
	})
}

// spMMAddSlices accumulates slices [lo, hi) of m*x into dst; with epilogue
// set it then applies bias+ReLU to the slice's rows while hot. Each output
// row belongs to exactly one slice, so the parallel split stays
// bit-identical.
func (m *SELLOf[T]) spMMAddSlices(dst, x *dense.Of[T], bias []T, epilogue bool, lo, hi int) {
	f := x.Cols
	for s := lo; s < hi; s++ {
		rows := min(m.C, m.Rows-s*m.C)
		base := m.SlicePtr[s]
		width := (m.SlicePtr[s+1] - base) / max(rows, 1)
		for r := 0; r < rows; r++ {
			i := m.Perm[s*m.C+r]
			drow := dst.Data[i*f : (i+1)*f]
			for w := 0; w < width; w++ {
				v := m.Val[base+w*rows+r]
				if v == 0 {
					continue
				}
				c := m.ColIdx[base+w*rows+r]
				dense.AxpyRow(drow, v, x.Data[c*f:(c+1)*f])
			}
		}
		if epilogue {
			for r := 0; r < rows; r++ {
				i := m.Perm[s*m.C+r]
				dense.BiasReLURow(dst.Data[i*f:(i+1)*f], bias)
			}
		}
	}
}

func (m *SELLOf[T]) checkSpMM(dst, x *dense.Of[T], op string) {
	if m.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: %s inner dimension mismatch: %dx%d * %dx%d", op, m.Rows, m.Cols, x.Rows, x.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, m.Rows, x.Cols))
	}
}
