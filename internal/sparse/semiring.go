package sparse

import (
	"math"

	"repro/internal/dense"
)

// Semiring generalizes the (+, ×) pair used by SpMM, following the
// Combinatorial BLAS interface the paper points to for increasing GNN
// expressive power (§I: "many distributed libraries ... allow the user to
// overload scalar addition operations through their semiring interface,
// which is exactly the neighborhood aggregate function").
//
// Plus must be associative and commutative with identity Zero; Times
// combines an adjacency weight with a feature value.
type Semiring interface {
	// Name identifies the semiring in configs and logs.
	Name() string
	// Zero is the identity of Plus (the value of an empty aggregation).
	Zero() float64
	// Plus aggregates two partial results.
	Plus(a, b float64) float64
	// Times combines an edge weight with an incoming feature value.
	Times(edge, x float64) float64
}

// PlusTimes is the standard arithmetic semiring; SpMMSemiring with
// PlusTimes equals SpMM.
type PlusTimes struct{}

// Name implements Semiring.
func (PlusTimes) Name() string { return "plus-times" }

// Zero implements Semiring.
func (PlusTimes) Zero() float64 { return 0 }

// Plus implements Semiring.
func (PlusTimes) Plus(a, b float64) float64 { return a + b }

// Times implements Semiring.
func (PlusTimes) Times(edge, x float64) float64 { return edge * x }

// MaxTimes implements max-aggregation (GraphSAGE's max pooling): the
// neighborhood aggregate is the elementwise maximum of scaled neighbor
// features.
type MaxTimes struct{}

// Name implements Semiring.
func (MaxTimes) Name() string { return "max-times" }

// Zero implements Semiring.
func (MaxTimes) Zero() float64 { return math.Inf(-1) }

// Plus implements Semiring.
func (MaxTimes) Plus(a, b float64) float64 { return math.Max(a, b) }

// Times implements Semiring.
func (MaxTimes) Times(edge, x float64) float64 { return edge * x }

// MinPlus is the tropical semiring; Aᵏ under MinPlus computes k-hop
// shortest-path distances, a classic CombBLAS-style use.
type MinPlus struct{}

// Name implements Semiring.
func (MinPlus) Name() string { return "min-plus" }

// Zero implements Semiring.
func (MinPlus) Zero() float64 { return math.Inf(1) }

// Plus implements Semiring.
func (MinPlus) Plus(a, b float64) float64 { return math.Min(a, b) }

// Times implements Semiring.
func (MinPlus) Times(edge, x float64) float64 { return edge + x }

// OrAnd is the boolean semiring over {0, 1}: reachability aggregation.
type OrAnd struct{}

// Name implements Semiring.
func (OrAnd) Name() string { return "or-and" }

// Zero implements Semiring.
func (OrAnd) Zero() float64 { return 0 }

// Plus implements Semiring.
func (OrAnd) Plus(a, b float64) float64 {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}

// Times implements Semiring.
func (OrAnd) Times(edge, x float64) float64 {
	if edge != 0 && x != 0 {
		return 1
	}
	return 0
}

// SpMMSemiring computes dst = a ⊗ x under the given semiring: dst[i,j] =
// Plus over k with a[i,k] ≠ stored of Times(a[i,k], x[k,j]), starting from
// Zero. Rows of a with no nonzeros yield Zero (e.g. -Inf under MaxTimes),
// which callers may post-process.
func SpMMSemiring(dst *dense.Matrix, a *CSR, x *dense.Matrix, s Semiring) {
	checkSpMM(dst, a, x, "SpMMSemiring")
	f := x.Cols
	zero := s.Zero()
	for i := range dst.Data {
		dst.Data[i] = zero
	}
	for i := 0; i < a.Rows; i++ {
		drow := dst.Data[i*f : (i+1)*f]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			v := a.Val[k]
			xrow := x.Data[a.ColIdx[k]*f : (a.ColIdx[k]+1)*f]
			for j, xv := range xrow {
				drow[j] = s.Plus(drow[j], s.Times(v, xv))
			}
		}
	}
}

// SemiringByName returns a registered semiring.
func SemiringByName(name string) (Semiring, bool) {
	switch name {
	case "plus-times":
		return PlusTimes{}, true
	case "max-times":
		return MaxTimes{}, true
	case "min-plus":
		return MinPlus{}, true
	case "or-and":
		return OrAnd{}, true
	}
	return nil, false
}
