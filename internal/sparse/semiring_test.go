package sparse

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
)

func TestSpMMSemiringPlusTimesEqualsSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randCSR(rng, 12, 10, 0.3)
	x := randDense(rng, 10, 5)
	want := dense.New(12, 5)
	SpMM(want, a, x)
	got := dense.New(12, 5)
	SpMMSemiring(got, a, x, PlusTimes{})
	if dense.MaxAbsDiff(got, want) > 1e-12 {
		t.Fatal("PlusTimes semiring must equal SpMM")
	}
}

func TestSpMMSemiringMaxTimes(t *testing.T) {
	// Vertex 0 aggregates neighbors 1 and 2 with unit weights: max pooling.
	a := NewCSR(3, 3, []Coord{{0, 1, 1}, {0, 2, 1}})
	x := dense.FromRows([][]float64{
		{0, 0},
		{3, -1},
		{2, 5},
	})
	out := dense.New(3, 2)
	SpMMSemiring(out, a, x, MaxTimes{})
	if out.At(0, 0) != 3 || out.At(0, 1) != 5 {
		t.Fatalf("max aggregation wrong: %v", out)
	}
	// Rows with no neighbors yield the semiring zero, -Inf.
	if !math.IsInf(out.At(1, 0), -1) {
		t.Fatalf("empty row should be -Inf, got %v", out.At(1, 0))
	}
}

func TestSpMMSemiringMinPlusShortestPaths(t *testing.T) {
	// Path graph 0-1-2-3 with unit edge weights. Iterating x ← A ⊗ x under
	// MinPlus from the indicator of vertex 0 computes BFS distances.
	var entries []Coord
	for i := 0; i < 3; i++ {
		entries = append(entries, Coord{i, i + 1, 1}, Coord{i + 1, i, 1})
	}
	// Self loops with weight 0 retain the current distance.
	for i := 0; i < 4; i++ {
		entries = append(entries, Coord{i, i, 0})
	}
	a := NewCSR(4, 4, entries)
	x := dense.New(4, 1)
	for i := 1; i < 4; i++ {
		x.Set(i, 0, math.Inf(1))
	}
	for iter := 0; iter < 3; iter++ {
		next := dense.New(4, 1)
		SpMMSemiring(next, a, x, MinPlus{})
		x = next
	}
	for i := 0; i < 4; i++ {
		if x.At(i, 0) != float64(i) {
			t.Fatalf("distance to %d = %v, want %d", i, x.At(i, 0), i)
		}
	}
}

func TestSpMMSemiringOrAndReachability(t *testing.T) {
	// 0 -> 1 -> 2; reachability frontier expands one hop per multiply.
	a := NewCSR(3, 3, []Coord{{1, 0, 1}, {2, 1, 1}, {0, 0, 1}, {1, 1, 1}, {2, 2, 1}})
	x := dense.FromRows([][]float64{{1}, {0}, {0}})
	SpMMSemiring(x.Clone(), a, x, OrAnd{}) // warm call for coverage
	cur := x
	for iter := 0; iter < 2; iter++ {
		next := dense.New(3, 1)
		SpMMSemiring(next, a, cur, OrAnd{})
		cur = next
	}
	for i := 0; i < 3; i++ {
		if cur.At(i, 0) != 1 {
			t.Fatalf("vertex %d unreachable: %v", i, cur)
		}
	}
}

func TestSemiringByName(t *testing.T) {
	for _, name := range []string{"plus-times", "max-times", "min-plus", "or-and"} {
		s, ok := SemiringByName(name)
		if !ok || s.Name() != name {
			t.Fatalf("lookup %q failed", name)
		}
	}
	if _, ok := SemiringByName("frobnicate"); ok {
		t.Fatal("unknown semiring should fail lookup")
	}
}

// TestSemiringProperties checks Plus identity and commutativity for every
// registered semiring on random values.
func TestSemiringProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, name := range []string{"plus-times", "max-times", "min-plus", "or-and"} {
		s, _ := SemiringByName(name)
		for trial := 0; trial < 100; trial++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			if name == "or-and" {
				a, b = float64(rng.Intn(2)), float64(rng.Intn(2))
			}
			if s.Plus(a, s.Zero()) != a {
				t.Fatalf("%s: Zero is not a Plus identity for %v", name, a)
			}
			if s.Plus(a, b) != s.Plus(b, a) {
				t.Fatalf("%s: Plus not commutative", name)
			}
		}
	}
}
