package sparse

import (
	"fmt"
	"sort"

	"repro/internal/dense"
	"repro/internal/parallel"
)

// spmmFeatureBlock is the column-tile width for the feature-blocked SpMM
// loop. Dense operands wider than this are processed one 256-column tile at
// a time (256 float64 = 2 KiB per x row), so the set of x rows a CSR row
// block touches stays cache-resident instead of streaming whole wide rows
// through L1 for every nonzero.
const spmmFeatureBlock = 256

// spmmRowBlock is the CSR row-block height of the feature-blocked loop: all
// feature tiles of one row block complete before the next block starts, so
// the x rows referenced by the block are reused across tiles while still
// hot.
const spmmRowBlock = 64

// SpMM computes dst = a * x where a is sparse and x is dense (the SpMM
// kernel the paper identifies as the dominant GNN training cost). dst must
// be a.Rows x x.Cols and is overwritten.
//
// Like every kernel in this package, SpMM dispatches on the process-wide
// parallel backend: under parallel.BackendParallel large products are
// row-partitioned across the shared worker pool, with each output row owned
// by exactly one worker so the result is bit-identical to the serial loop.
func SpMM[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T]) {
	checkSpMM(dst, a, x, "SpMM")
	dst.Zero()
	SpMMAdd(dst, a, x)
}

// SpMMAdd computes dst += a * x. This is the accumulating form used inside
// SUMMA iterations where partial products for different k-blocks sum into
// the same output tile.
func SpMMAdd[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T]) {
	checkSpMM(dst, a, x, "SpMMAdd")
	work := SpMMFlops(a, x.Cols)
	if parallel.Inline(a.Rows, work) {
		spMMAddRows(dst, a, x, 0, a.Rows)
		return
	}
	parallel.Rows(a.Rows, work, func(lo, hi int) {
		spMMAddRows(dst, a, x, lo, hi)
	})
}

// axpyEntryRun accumulates the stored entries [k0, k1) of (val, colIdx)
// into drow: entry k scales the len(drow)-wide slice of x starting at
// colIdx[k]*stride+off. Entries are consumed four per pass through the
// fused dense.Axpy4Row sweep (sequential adds in entry order), with a
// scalar tail — per output element exactly the adds of the per-entry loop
// in the same order, so the result is bit-identical to it (a stored zero
// contributes its +0·x in both forms).
func axpyEntryRun[T dense.Elem](drow []T, val []T, colIdx []int, xdata []T, stride, off, k0, k1 int) {
	n := len(drow)
	k := k0
	for ; k+4 <= k1; k += 4 {
		c0 := colIdx[k]*stride + off
		c1 := colIdx[k+1]*stride + off
		c2 := colIdx[k+2]*stride + off
		c3 := colIdx[k+3]*stride + off
		dense.Axpy4Row(drow,
			val[k], xdata[c0:c0+n],
			val[k+1], xdata[c1:c1+n],
			val[k+2], xdata[c2:c2+n],
			val[k+3], xdata[c3:c3+n])
	}
	for ; k < k1; k++ {
		c := colIdx[k]*stride + off
		dense.AxpyRow(drow, val[k], xdata[c:c+n])
	}
}

// spMMAddRows accumulates rows [lo, hi) of a*x into dst. For each output
// row the accumulation order is identical to the full serial loop: wide
// operands take the feature-blocked path, which visits the same
// (nonzero, column) pairs in the same per-element order (for a fixed output
// element (i, j), contributions arrive in nonzero order k in both loops —
// column tiling only reorders across j, never across k).
func spMMAddRows[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T], lo, hi int) {
	if x.Cols > spmmFeatureBlock {
		spMMAddRowsBlocked(dst, a, x, lo, hi)
		return
	}
	f := x.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*f : (i+1)*f]
		axpyEntryRun(drow, a.Val, a.ColIdx, x.Data, f, 0, a.RowPtr[i], a.RowPtr[i+1])
	}
}

// spMMAddRowsBlocked is the cache-blocked SpMM loop for wide dense
// operands: CSR rows are processed in blocks of spmmRowBlock, and within a
// row block the feature dimension is tiled in spmmFeatureBlock columns, so
// each x row referenced by the block contributes one tile-sized slice at a
// time and is revisited while its lines are still cached.
func spMMAddRowsBlocked[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T], lo, hi int) {
	f := x.Cols
	for i0 := lo; i0 < hi; i0 += spmmRowBlock {
		i1 := i0 + spmmRowBlock
		if i1 > hi {
			i1 = hi
		}
		for j0 := 0; j0 < f; j0 += spmmFeatureBlock {
			j1 := j0 + spmmFeatureBlock
			if j1 > f {
				j1 = f
			}
			for i := i0; i < i1; i++ {
				drow := dst.Data[i*f+j0 : i*f+j1]
				axpyEntryRun(drow, a.Val, a.ColIdx, x.Data, f, j0, a.RowPtr[i], a.RowPtr[i+1])
			}
		}
	}
}

// SpMMBiasReLU computes dst = relu(a*x + bias) — the fused forward
// epilogue for the aggregation-side multiply: the bias broadcast (bias may
// be nil) and the ReLU run over each output row slice as soon as its
// accumulation finishes, while it is still cache-resident, instead of as
// two further full passes over the activation. Every output element's
// multiply-add sequence matches SpMM's and the epilogue runs after its sum
// completes, so the result is bit-identical to SpMM followed by the ReLU
// activation.
func SpMMBiasReLU[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T], bias []T) {
	checkSpMM(dst, a, x, "SpMMBiasReLU")
	if bias != nil && len(bias) != x.Cols {
		panic(fmt.Sprintf("sparse: SpMMBiasReLU bias length %d, want %d", len(bias), x.Cols))
	}
	dst.Zero()
	work := SpMMFlops(a, x.Cols)
	if parallel.Inline(a.Rows, work) {
		spMMBiasReLURows(dst, a, x, bias, 0, a.Rows)
		return
	}
	parallel.Rows(a.Rows, work, func(lo, hi int) {
		spMMBiasReLURows(dst, a, x, bias, lo, hi)
	})
}

// spMMBiasReLURows is spMMAddRows with the epilogue fused in: narrow
// operands apply bias+ReLU per row right after its accumulation; wide
// operands apply it per (row, feature-tile) slice, which is complete as
// soon as the tile's k loop finishes because tiles cover disjoint columns.
func spMMBiasReLURows[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T], bias []T, lo, hi int) {
	f := x.Cols
	if f <= spmmFeatureBlock {
		for i := lo; i < hi; i++ {
			drow := dst.Data[i*f : (i+1)*f]
			axpyEntryRun(drow, a.Val, a.ColIdx, x.Data, f, 0, a.RowPtr[i], a.RowPtr[i+1])
			dense.BiasReLURow(drow, bias)
		}
		return
	}
	for i0 := lo; i0 < hi; i0 += spmmRowBlock {
		i1 := min(i0+spmmRowBlock, hi)
		for j0 := 0; j0 < f; j0 += spmmFeatureBlock {
			j1 := min(j0+spmmFeatureBlock, f)
			var btile []T
			if bias != nil {
				btile = bias[j0:j1]
			}
			for i := i0; i < i1; i++ {
				drow := dst.Data[i*f+j0 : i*f+j1]
				axpyEntryRun(drow, a.Val, a.ColIdx, x.Data, f, j0, a.RowPtr[i], a.RowPtr[i+1])
				dense.BiasReLURow(drow, btile)
			}
		}
	}
}

// SpMMAddRowList computes dst[i] += (a*x)[i] for exactly the rows listed in
// rows (ascending, no duplicates); other rows of dst are untouched. For
// each listed row the per-element accumulation order is identical to
// SpMMAdd's (contributions arrive in nonzero order k), so splitting a
// product into disjoint row lists and running them in any order reproduces
// the full SpMMAdd bit for bit.
//
// This is the kernel behind the overlapped halo trainers' interior/frontier
// split: interior rows (no remote dependencies) multiply while the halo
// exchange is in flight, frontier rows after its Wait.
func SpMMAddRowList[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T], rows []int) {
	checkSpMM(dst, a, x, "SpMMAddRowList")
	if len(rows) == 0 {
		return
	}
	work := 2 * RowListNNZ(a, rows) * int64(x.Cols)
	if parallel.Inline(len(rows), work) {
		spMMAddRowList(dst, a, x, rows)
		return
	}
	parallel.Rows(len(rows), work, func(lo, hi int) {
		spMMAddRowList(dst, a, x, rows[lo:hi])
	})
}

// spMMAddRowList is the serial row-list loop; each listed output row is
// owned by exactly one worker, so the parallel split stays bit-identical.
func spMMAddRowList[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T], rows []int) {
	f := x.Cols
	for _, i := range rows {
		drow := dst.Data[i*f : (i+1)*f]
		axpyEntryRun(drow, a.Val, a.ColIdx, x.Data, f, 0, a.RowPtr[i], a.RowPtr[i+1])
	}
}

// RowListNNZ returns the nonzero count of a restricted to the listed rows —
// the flop basis the cost model charges for a row-list SpMM.
func RowListNNZ[T dense.Elem](a *CSROf[T], rows []int) int64 {
	var nnz int64
	for _, i := range rows {
		nnz += int64(a.RowPtr[i+1] - a.RowPtr[i])
	}
	return nnz
}

// SpMMT computes dst = aᵀ * x without materializing aᵀ, by scattering each
// stored row of a into the rows of dst indexed by its column indices. dst
// must be a.Cols x x.Cols and is overwritten.
//
// Callers that multiply by the same aᵀ repeatedly should build a
// TransposePlan once and use its methods instead: the plan turns the
// scatter (plus the per-call binary searches of the parallel path) into
// sequential gathers with identical output.
func SpMMT[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T]) {
	checkSpMMT(dst, a, x, "SpMMT")
	dst.Zero()
	SpMMTAdd(dst, a, x)
}

// SpMMTAdd computes dst += aᵀ * x.
//
// The parallel variant is owner-computes over dst rows: each worker owns a
// contiguous range of output rows (columns of a) and visits, per stored row
// of a, only the nonzeros whose column index falls in its range — located
// with a binary search, since column indices are strictly increasing within
// each row. Contributions to a given output row therefore arrive in the
// same (row, nonzero) order as in the serial scatter loop, keeping the
// result bit-identical.
func SpMMTAdd[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T]) {
	checkSpMMT(dst, a, x, "SpMMTAdd")
	work := SpMMFlops(a, x.Cols)
	if parallel.Inline(a.Cols, work) {
		spMMTAddCols(dst, a, x, 0, a.Cols)
		return
	}
	parallel.Rows(a.Cols, work, func(lo, hi int) {
		spMMTAddCols(dst, a, x, lo, hi)
	})
}

// spMMTAddCols accumulates rows [lo, hi) of aᵀ*x into dst.
func spMMTAddCols[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T], lo, hi int) {
	f := x.Cols
	full := lo == 0 && hi == a.Cols
	for i := 0; i < a.Rows; i++ {
		k0, k1 := a.RowPtr[i], a.RowPtr[i+1]
		if !full {
			row := a.ColIdx[k0:k1]
			k1 = k0 + sort.SearchInts(row, hi)
			k0 += sort.SearchInts(row, lo)
		}
		if k0 == k1 {
			continue
		}
		xrow := x.Data[i*f : (i+1)*f]
		for k := k0; k < k1; k++ {
			dense.AxpyRow(dst.Data[a.ColIdx[k]*f:(a.ColIdx[k]+1)*f], a.Val[k], xrow)
		}
	}
}

// SpMMFlops returns the floating-point operation count of SpMM(a, x): one
// multiply and one add per (nonzero, dense column) pair.
func SpMMFlops[T dense.Elem](a *CSROf[T], denseCols int) int64 {
	return 2 * int64(a.NNZ()) * int64(denseCols)
}

func checkSpMM[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T], op string) {
	if a.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: %s inner dimension mismatch: %dx%d * %dx%d", op, a.Rows, a.Cols, x.Rows, x.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, a.Rows, x.Cols))
	}
}

func checkSpMMT[T dense.Elem](dst *dense.Of[T], a *CSROf[T], x *dense.Of[T], op string) {
	if a.Rows != x.Rows {
		panic(fmt.Sprintf("sparse: %s inner dimension mismatch: (%dx%d)ᵀ * %dx%d", op, a.Rows, a.Cols, x.Rows, x.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, a.Cols, x.Cols))
	}
}
