package sparse

import (
	"fmt"

	"repro/internal/dense"
)

// SpMM computes dst = a * x where a is sparse and x is dense (the SpMM
// kernel the paper identifies as the dominant GNN training cost). dst must
// be a.Rows x x.Cols and is overwritten.
func SpMM(dst *dense.Matrix, a *CSR, x *dense.Matrix) {
	checkSpMM(dst, a, x, "SpMM")
	dst.Zero()
	SpMMAdd(dst, a, x)
}

// SpMMAdd computes dst += a * x. This is the accumulating form used inside
// SUMMA iterations where partial products for different k-blocks sum into
// the same output tile.
func SpMMAdd(dst *dense.Matrix, a *CSR, x *dense.Matrix) {
	checkSpMM(dst, a, x, "SpMMAdd")
	f := x.Cols
	for i := 0; i < a.Rows; i++ {
		drow := dst.Data[i*f : (i+1)*f]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			v := a.Val[k]
			xrow := x.Data[a.ColIdx[k]*f : (a.ColIdx[k]+1)*f]
			for j, xv := range xrow {
				drow[j] += v * xv
			}
		}
	}
}

// SpMMT computes dst = aᵀ * x without materializing aᵀ, by scattering each
// stored row of a into the rows of dst indexed by its column indices. dst
// must be a.Cols x x.Cols and is overwritten.
func SpMMT(dst *dense.Matrix, a *CSR, x *dense.Matrix) {
	checkSpMMT(dst, a, x, "SpMMT")
	dst.Zero()
	SpMMTAdd(dst, a, x)
}

// SpMMTAdd computes dst += aᵀ * x.
func SpMMTAdd(dst *dense.Matrix, a *CSR, x *dense.Matrix) {
	checkSpMMT(dst, a, x, "SpMMTAdd")
	f := x.Cols
	for i := 0; i < a.Rows; i++ {
		xrow := x.Data[i*f : (i+1)*f]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			v := a.Val[k]
			drow := dst.Data[a.ColIdx[k]*f : (a.ColIdx[k]+1)*f]
			for j, xv := range xrow {
				drow[j] += v * xv
			}
		}
	}
}

// SpMMFlops returns the floating-point operation count of SpMM(a, x): one
// multiply and one add per (nonzero, dense column) pair.
func SpMMFlops(a *CSR, denseCols int) int64 {
	return 2 * int64(a.NNZ()) * int64(denseCols)
}

func checkSpMM(dst *dense.Matrix, a *CSR, x *dense.Matrix, op string) {
	if a.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: %s inner dimension mismatch: %dx%d * %dx%d", op, a.Rows, a.Cols, x.Rows, x.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, a.Rows, x.Cols))
	}
}

func checkSpMMT(dst *dense.Matrix, a *CSR, x *dense.Matrix, op string) {
	if a.Rows != x.Rows {
		panic(fmt.Sprintf("sparse: %s inner dimension mismatch: (%dx%d)ᵀ * %dx%d", op, a.Rows, a.Cols, x.Rows, x.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, a.Cols, x.Cols))
	}
}
