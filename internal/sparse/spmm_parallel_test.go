package sparse

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/parallel"
)

// withBackends computes the same kernel under the serial and parallel
// backends (with enough workers to force real partitioning) and hands both
// results to check.
func withBackends(t *testing.T, compute func() *dense.Matrix, check func(serial, par *dense.Matrix)) {
	t.Helper()
	prevB, prevW := parallel.CurrentBackend(), parallel.Workers()
	defer func() {
		parallel.SetBackend(prevB)
		parallel.SetWorkers(prevW)
	}()
	parallel.SetWorkers(7)
	parallel.SetBackend(parallel.BackendSerial)
	serial := compute()
	parallel.SetBackend(parallel.BackendParallel)
	par := compute()
	check(serial, par)
}

// requireBitIdentical fails unless a and b match bit for bit.
func requireBitIdentical(t *testing.T, serial, par *dense.Matrix) {
	t.Helper()
	if serial.Rows != par.Rows || serial.Cols != par.Cols {
		t.Fatalf("shape mismatch: serial %dx%d, parallel %dx%d", serial.Rows, serial.Cols, par.Rows, par.Cols)
	}
	for i := range serial.Data {
		if serial.Data[i] != par.Data[i] {
			t.Fatalf("element %d differs: serial %v, parallel %v", i, serial.Data[i], par.Data[i])
		}
	}
}

// randomCSR builds a CSR with roughly density*rows*cols nonzeros, plus a few
// deliberately empty rows.
func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	var entries []Coord
	for i := 0; i < rows; i++ {
		if rows > 4 && i%5 == 3 {
			continue // leave every fifth-ish row empty
		}
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				entries = append(entries, Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return NewCSR(rows, cols, entries)
}

func randomMatrix(rng *rand.Rand, rows, cols int) *dense.Matrix {
	m := dense.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// spmmShapes covers the paper-shaped products plus degenerate edges: empty
// matrices, single rows/columns, and tall/wide extremes. Sizes are chosen so
// the larger cases clear the parallel dispatch threshold.
var spmmShapes = []struct {
	rows, cols, f int
	density       float64
}{
	{0, 0, 3, 0},
	{1, 1, 1, 1},
	{1, 600, 40, 0.5}, // 1xN
	{600, 1, 40, 0.5}, // Nx1
	{97, 103, 1, 0.3}, // single dense column
	{256, 256, 32, 0.05},
	{500, 300, 64, 0.1},
	{300, 500, 64, 0.1},
}

func TestSpMMParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range spmmShapes {
		t.Run(fmt.Sprintf("%dx%d_f%d", s.rows, s.cols, s.f), func(t *testing.T) {
			a := randomCSR(rng, s.rows, s.cols, s.density)
			x := randomMatrix(rng, s.cols, s.f)
			withBackends(t, func() *dense.Matrix {
				dst := dense.New(s.rows, s.f)
				SpMM(dst, a, x)
				return dst
			}, func(serial, par *dense.Matrix) {
				requireBitIdentical(t, serial, par)
			})
		})
	}
}

func TestSpMMAddParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomCSR(rng, 400, 350, 0.08)
	x := randomMatrix(rng, 350, 48)
	init := randomMatrix(rng, 400, 48)
	withBackends(t, func() *dense.Matrix {
		dst := init.Clone()
		SpMMAdd(dst, a, x)
		return dst
	}, func(serial, par *dense.Matrix) {
		requireBitIdentical(t, serial, par)
	})
}

func TestSpMMTParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, s := range spmmShapes {
		t.Run(fmt.Sprintf("%dx%d_f%d", s.rows, s.cols, s.f), func(t *testing.T) {
			a := randomCSR(rng, s.rows, s.cols, s.density)
			x := randomMatrix(rng, s.rows, s.f)
			withBackends(t, func() *dense.Matrix {
				dst := dense.New(s.cols, s.f)
				SpMMT(dst, a, x)
				return dst
			}, func(serial, par *dense.Matrix) {
				requireBitIdentical(t, serial, par)
			})
		})
	}
}

func TestSpMMTAddParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomCSR(rng, 400, 350, 0.08)
	x := randomMatrix(rng, 400, 48)
	init := randomMatrix(rng, 350, 48)
	withBackends(t, func() *dense.Matrix {
		dst := init.Clone()
		SpMMTAdd(dst, a, x)
		return dst
	}, func(serial, par *dense.Matrix) {
		requireBitIdentical(t, serial, par)
	})
}

// TestSpMMParallelMatchesNaive cross-checks the parallel kernel against a
// naive dense reference (within floating-point tolerance, since the naive
// reference accumulates in a different order).
func TestSpMMParallelMatchesNaive(t *testing.T) {
	prevB, prevW := parallel.CurrentBackend(), parallel.Workers()
	defer func() {
		parallel.SetBackend(prevB)
		parallel.SetWorkers(prevW)
	}()
	parallel.SetWorkers(7)
	parallel.SetBackend(parallel.BackendParallel)

	rng := rand.New(rand.NewSource(19))
	a := randomCSR(rng, 150, 120, 0.2)
	x := randomMatrix(rng, 120, 50)
	dst := dense.New(150, 50)
	SpMM(dst, a, x)

	want := dense.New(150, 50)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * x.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if !dense.EqualWithin(dst, want, 1e-9) {
		t.Fatalf("parallel SpMM deviates from naive reference by %g", dense.MaxAbsDiff(dst, want))
	}
}
