package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/dense"
)

// splitRowsEvenOdd partitions [0, n) into two disjoint ascending lists the
// way the overlap trainers split interior/frontier rows.
func splitRowsEvenOdd(n int) (evens, odds []int) {
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			evens = append(evens, i)
		} else {
			odds = append(odds, i)
		}
	}
	return evens, odds
}

// TestSpMMAddRowListSplitsBitIdentically: running two disjoint row lists in
// either order must reproduce the full SpMMAdd bit for bit — the property
// the interior/frontier overlap split relies on.
func TestSpMMAddRowListSplitsBitIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, s := range []struct{ rows, cols, f int }{
		{1, 1, 1}, {17, 23, 5}, {128, 96, 33}, {200, 150, 300},
	} {
		a := randomCSR(rng, s.rows, s.cols, 0.08)
		x := randomMatrix(rng, s.cols, s.f)
		want := dense.New(s.rows, s.f)
		SpMMAdd(want, a, x)

		evens, odds := splitRowsEvenOdd(s.rows)
		for _, order := range [][][]int{{evens, odds}, {odds, evens}} {
			got := dense.New(s.rows, s.f)
			for _, rows := range order {
				SpMMAddRowList(got, a, x, rows)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%dx%d f=%d: element %d differs: %v vs %v",
						s.rows, s.cols, s.f, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestSpMMAddRowListTouchesOnlyListedRows: unlisted rows keep their prior
// contents exactly.
func TestSpMMAddRowListTouchesOnlyListedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := randomCSR(rng, 40, 30, 0.2)
	x := randomMatrix(rng, 30, 7)
	init := randomMatrix(rng, 40, 7)
	got := init.Clone()
	evens, _ := splitRowsEvenOdd(40)
	SpMMAddRowList(got, a, x, evens)
	for _, i := range []int{1, 7, 39} {
		for j := 0; j < 7; j++ {
			if got.At(i, j) != init.At(i, j) {
				t.Fatalf("unlisted row %d was modified", i)
			}
		}
	}
	if len(evens) > 0 && got.At(0, 0) == init.At(0, 0) && a.RowPtr[1] > a.RowPtr[0] {
		t.Fatal("listed row 0 was not updated")
	}
}

// TestSpMMAddRowListParallelBitIdentical: the parallel backend must split
// the row list without changing a single bit.
func TestSpMMAddRowListParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	a := randomCSR(rng, 300, 250, 0.05)
	x := randomMatrix(rng, 250, 40)
	evens, _ := splitRowsEvenOdd(300)
	withBackends(t, func() *dense.Matrix {
		out := dense.New(300, 40)
		SpMMAddRowList(out, a, x, evens)
		return out
	}, func(serial, par *dense.Matrix) {
		requireBitIdentical(t, serial, par)
	})
}

// TestRowListNNZ checks the charge basis against RowPtr arithmetic.
func TestRowListNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	a := randomCSR(rng, 50, 50, 0.1)
	evens, odds := splitRowsEvenOdd(50)
	if got := RowListNNZ(a, evens) + RowListNNZ(a, odds); got != int64(a.NNZ()) {
		t.Fatalf("row-list nnz split %d != total %d", got, a.NNZ())
	}
	if RowListNNZ(a, nil) != 0 {
		t.Fatal("empty list must have zero nnz")
	}
}
