package sparse

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/parallel"
)

// TransposePlan is a precomputed kernel plan for repeated aᵀ·x products
// with a fixed sparse a: a CSC-style view of a (column-sorted nonzeros with
// source-row indices) plus nnz-balanced per-worker split offsets.
//
// The plain SpMMT/SpMMTAdd kernels scatter each stored row of a into dst
// and, under the parallel backend, re-derive their owner-computes partition
// with two binary searches per CSR row on every call. A plan pays that
// index work once: every later multiply is a sequential gather over the
// plan's arrays — no searches, unit-stride writes to dst — and the worker
// split is read off precomputed offsets.
//
// Bit-identity: the plan stores, for each output row c (column of a), its
// contributions ordered by source row i ascending — exactly the order the
// serial scatter loop (rows ascending, columns ascending within a row)
// accumulates them into dst row c, and exactly the order the binary-search
// parallel path visits them. Every output element therefore sees the same
// floating-point additions in the same order as both existing paths.
//
// A plan is immutable after construction and safe for concurrent use.
type TransposePlan struct {
	rows, cols int // dimensions of the source a (dst has cols rows)

	// colPtr/srcRow/val are the CSC arrays: contributions to output row c
	// occupy positions [colPtr[c], colPtr[c+1]), each scaling x row
	// srcRow[k] by val[k].
	colPtr []int
	srcRow []int
	val    []float64

	// split holds chunk boundaries over the output rows, balanced by
	// nonzero count for the worker pool width at build time; chunk ci owns
	// output rows [split[ci], split[ci+1]).
	split []int
}

// NewTransposePlan builds the plan for aᵀ products, splitting the output
// rows into one nnz-balanced chunk per worker of the shared pool. The plan
// costs O(nnz + cols) space — the same order as holding aᵀ explicitly.
func NewTransposePlan(a *CSR) *TransposePlan {
	return NewTransposePlanChunks(a, parallel.Workers())
}

// NewTransposePlanChunks is NewTransposePlan with an explicit target
// worker-chunk count (values < 1 select a single chunk), for tests and
// callers with a known concurrency.
func NewTransposePlanChunks(a *CSR, chunks int) *TransposePlan {
	p := &TransposePlan{
		rows:   a.Rows,
		cols:   a.Cols,
		colPtr: make([]int, a.Cols+1),
		srcRow: make([]int, a.NNZ()),
		val:    make([]float64, a.NNZ()),
	}
	// Counting pass, as in CSR.Transpose: bucket nonzeros by column,
	// preserving row order within each bucket.
	for _, c := range a.ColIdx {
		p.colPtr[c+1]++
	}
	for c := 0; c < a.Cols; c++ {
		p.colPtr[c+1] += p.colPtr[c]
	}
	next := append([]int(nil), p.colPtr[:a.Cols]...)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.ColIdx[k]
			pos := next[c]
			next[c]++
			p.srcRow[pos] = i
			p.val[pos] = a.Val[k]
		}
	}
	p.split = nnzSplits(p.colPtr, chunks)
	return p
}

// nnzSplits partitions the output rows of a colPtr-described matrix into at
// most chunks contiguous ranges of near-equal nonzero count.
func nnzSplits(colPtr []int, chunks int) []int {
	cols := len(colPtr) - 1
	if chunks < 1 {
		chunks = 1
	}
	if chunks > cols {
		chunks = cols
	}
	if chunks < 1 {
		chunks = 1 // 0-column matrix: one empty chunk
	}
	nnz := colPtr[cols]
	split := make([]int, chunks+1)
	c := 0
	for ci := 1; ci < chunks; ci++ {
		target := nnz * ci / chunks
		for c < cols && colPtr[c] < target {
			c++
		}
		split[ci] = c
	}
	split[chunks] = cols
	return split
}

// Rows returns the row count of the planned source matrix a.
func (p *TransposePlan) Rows() int { return p.rows }

// Cols returns the column count of the planned source matrix a.
func (p *TransposePlan) Cols() int { return p.cols }

// SpMMT computes dst = aᵀ * x for the planned a. dst must be
// a.Cols x x.Cols and is overwritten.
func (p *TransposePlan) SpMMT(dst, x *dense.Matrix) {
	p.check(dst, x, "TransposePlan.SpMMT")
	dst.Zero()
	p.addRange(dst, x, 0, p.cols)
}

// SpMMTAdd computes dst += aᵀ * x for the planned a.
func (p *TransposePlan) SpMMTAdd(dst, x *dense.Matrix) {
	p.check(dst, x, "TransposePlan.SpMMTAdd")
	p.addRange(dst, x, 0, p.cols)
}

// addRange accumulates output rows [lo, hi) of aᵀ*x into dst, dispatching
// the precomputed nnz-balanced chunks within the range across the pool.
// Each output row is written by exactly one chunk and its gather order is
// the plan order, so the result matches the serial scatter bit-for-bit.
func (p *TransposePlan) addRange(dst, x *dense.Matrix, lo, hi int) {
	work := 2 * int64(p.colPtr[hi]-p.colPtr[lo]) * int64(x.Cols)
	if len(p.split) <= 2 || parallel.Inline(len(p.split)-1, work) {
		p.gatherCols(dst, x, lo, hi)
		return
	}
	parallel.Rows(len(p.split)-1, work, func(cLo, cHi int) {
		a := p.split[cLo]
		b := p.split[cHi]
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if a < b {
			p.gatherCols(dst, x, a, b)
		}
	})
}

// gatherCols accumulates output rows [lo, hi): for each output row, a
// sequential sweep over its plan entries gathering the referenced x rows,
// four entries per pass (dense.Axpy4Row keeps the per-element adds in entry
// order, so the fused sweep is bit-identical to the one-entry loop).
func (p *TransposePlan) gatherCols(dst, x *dense.Matrix, lo, hi int) {
	f := x.Cols
	for c := lo; c < hi; c++ {
		drow := dst.Data[c*f : (c+1)*f]
		axpyEntryRun(drow, p.val, p.srcRow, x.Data, f, 0, p.colPtr[c], p.colPtr[c+1])
	}
}

func (p *TransposePlan) check(dst, x *dense.Matrix, op string) {
	if p.rows != x.Rows {
		panic(fmt.Sprintf("sparse: %s inner dimension mismatch: (%dx%d)ᵀ * %dx%d", op, p.rows, p.cols, x.Rows, x.Cols))
	}
	if dst.Rows != p.cols || dst.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, p.cols, x.Cols))
	}
}
