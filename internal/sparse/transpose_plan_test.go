package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/parallel"
)

// TestTransposePlanMatchesSpMMTExactly: the plan's gather must be
// bit-identical to the scatter kernel, under both backends, across shapes
// including empty rows/columns and non-square matrices.
func TestTransposePlanMatchesSpMMTExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ rows, cols, f int }{
		{1, 1, 1}, {17, 23, 5}, {64, 64, 16}, {100, 30, 7}, {30, 100, 3},
	}
	for _, backend := range []parallel.Backend{parallel.BackendSerial, parallel.BackendParallel} {
		release := parallel.AcquireBackend(backend)
		for _, s := range shapes {
			for _, chunks := range []int{1, 3, 8} {
				a := randomCSR(rng, s.rows, s.cols, 0.15)
				x := randomMatrix(rng, s.rows, s.f)
				plan := NewTransposePlanChunks(a, chunks)
				if plan.Rows() != a.Rows || plan.Cols() != a.Cols {
					t.Fatalf("plan dims %dx%d, want %dx%d", plan.Rows(), plan.Cols(), a.Rows, a.Cols)
				}

				want := dense.New(a.Cols, s.f)
				SpMMT(want, a, x)
				got := dense.New(a.Cols, s.f)
				plan.SpMMT(got, x)
				if dense.MaxAbsDiff(want, got) != 0 {
					t.Fatalf("backend=%v shape=%v chunks=%d: plan SpMMT differs from scatter SpMMT",
						backend, s, chunks)
				}

				// Accumulating form on a dirty destination.
				acc1 := randomMatrix(rand.New(rand.NewSource(7)), a.Cols, s.f)
				acc2 := acc1.Clone()
				SpMMTAdd(acc1, a, x)
				plan.SpMMTAdd(acc2, x)
				if dense.MaxAbsDiff(acc1, acc2) != 0 {
					t.Fatalf("backend=%v shape=%v chunks=%d: plan SpMMTAdd differs", backend, s, chunks)
				}
			}
		}
		release()
	}
}

// TestTransposePlanSplitsCoverAndBalance: chunk boundaries must tile the
// output rows exactly and never split below zero nnz.
func TestTransposePlanSplitsCoverAndBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomCSR(rng, 200, 150, 0.1)
	for _, chunks := range []int{1, 2, 7, 150, 400} {
		p := NewTransposePlanChunks(a, chunks)
		s := p.split
		if s[0] != 0 || s[len(s)-1] != a.Cols {
			t.Fatalf("chunks=%d: splits %v do not cover [0,%d]", chunks, s, a.Cols)
		}
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				t.Fatalf("chunks=%d: splits %v decrease", chunks, s)
			}
		}
		if len(s)-1 > a.Cols {
			t.Fatalf("chunks=%d: more chunks (%d) than output rows (%d)", chunks, len(s)-1, a.Cols)
		}
	}
}

// TestTransposePlanSteadyStateAllocs: a planned multiply is allocation-free
// under the serial backend — the point of precomputing the plan.
func TestTransposePlanSteadyStateAllocs(t *testing.T) {
	release := parallel.AcquireBackend(parallel.BackendSerial)
	defer release()
	rng := rand.New(rand.NewSource(13))
	a := randomCSR(rng, 128, 96, 0.1)
	x := randomMatrix(rng, 128, 8)
	dst := dense.New(96, 8)
	plan := NewTransposePlan(a)
	plan.SpMMT(dst, x)
	if avg := testing.AllocsPerRun(10, func() { plan.SpMMT(dst, x) }); avg != 0 {
		t.Fatalf("planned SpMMT allocates %.1f times per call, want 0", avg)
	}
}

// TestBlockedSpMMMatchesExactly: the feature-blocked SpMM path (wide dense
// operands) must be bit-identical to the narrow unblocked loop.
func TestBlockedSpMMMatchesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randomCSR(rng, 60, 60, 0.1)
	// f > spmmFeatureBlock forces the blocked path; compute the reference
	// with the unblocked loop directly.
	f := spmmFeatureBlock + 37
	x := randomMatrix(rng, 60, f)
	blocked := dense.New(60, f)
	SpMM(blocked, a, x)

	unblocked := dense.New(60, f)
	for i := 0; i < a.Rows; i++ {
		drow := unblocked.Data[i*f : (i+1)*f]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			v := a.Val[k]
			xrow := x.Data[a.ColIdx[k]*f : (a.ColIdx[k]+1)*f]
			for j, xv := range xrow {
				drow[j] += v * xv
			}
		}
	}
	if dense.MaxAbsDiff(blocked, unblocked) != 0 {
		t.Fatalf("feature-blocked SpMM differs from the unblocked loop")
	}
}
