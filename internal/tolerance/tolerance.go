// Package tolerance provides the shared comparison helper for
// tolerance-validated kernel variants: paths that are numerically
// equivalent but not bit-identical to the float64 CSR reference (float32
// mixed precision, unrolled multi-accumulator reductions, elastic resumes
// across a repartition). Bit-identical paths don't use this package — they
// compare with exact equality.
package tolerance

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dense"
)

// Close reports whether got matches want element-wise within maxAbs
// absolute OR maxRel relative tolerance (an element passes if either bound
// holds, the standard two-sided criterion: absolute for values near zero,
// relative for large magnitudes). On mismatch the returned error describes
// the worst element — position, both values, and both error measures — so
// a tolerance bump is never chosen blind. Non-runtime callers usually want
// AssertClose; Close exists for runtime verdicts (the fault experiment's
// elastic-resume check) that have no testing.TB.
func Close[T dense.Elem](name string, got, want *dense.Of[T], maxAbs, maxRel float64) error {
	if got.Rows != want.Rows || got.Cols != want.Cols {
		return fmt.Errorf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	worstI, worstAbs, worstRel := -1, 0.0, 0.0
	for i := range want.Data {
		g, w := float64(got.Data[i]), float64(want.Data[i])
		// Non-finite values satisfy no tolerance: they must match exactly
		// (same NaN-ness or the same infinity). They also cannot go
		// through the worst-element tracking — a NaN delta fails every
		// comparison, including `abs > worstAbs`, which used to let a NaN
		// mismatch slip through silently.
		if math.IsNaN(g) || math.IsNaN(w) || math.IsInf(g, 0) || math.IsInf(w, 0) {
			if g == w || (math.IsNaN(g) && math.IsNaN(w)) {
				continue
			}
			r, c := i/want.Cols, i%want.Cols
			return fmt.Errorf("%s: element (%d,%d): got %v, want %v (non-finite values must match exactly)",
				name, r, c, got.Data[i], want.Data[i])
		}
		abs := math.Abs(g - w)
		rel := 0.0
		if w != 0 {
			rel = abs / math.Abs(w)
		} else if abs > 0 {
			rel = math.Inf(1)
		}
		if abs <= maxAbs || rel <= maxRel {
			continue
		}
		if abs > worstAbs {
			worstI, worstAbs, worstRel = i, abs, rel
		}
	}
	if worstI >= 0 {
		r, c := worstI/want.Cols, worstI%want.Cols
		return fmt.Errorf("%s: worst element (%d,%d): got %v, want %v (|Δ| = %g > %g, rel = %g > %g)",
			name, r, c, got.Data[worstI], want.Data[worstI], worstAbs, maxAbs, worstRel, maxRel)
	}
	return nil
}

// CloseSlice is Close for float64 slices (loss curves, accuracy traces).
func CloseSlice(name string, got, want []float64, maxAbs, maxRel float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", name, len(got), len(want))
	}
	gm := &dense.Matrix{Rows: 1, Cols: len(got), Data: got}
	wm := &dense.Matrix{Rows: 1, Cols: len(want), Data: want}
	return Close(name, gm, wm, maxAbs, maxRel)
}

// AssertClose is Close as a test assertion: it fails t with the worst
// element's report unless got matches want within the bounds.
func AssertClose[T dense.Elem](t testing.TB, name string, got, want *dense.Of[T], maxAbs, maxRel float64) {
	t.Helper()
	if err := Close(name, got, want, maxAbs, maxRel); err != nil {
		t.Fatalf("%v", err)
	}
}

// AssertCloseSlice is AssertClose for float64 slices (loss curves,
// accuracy traces).
func AssertCloseSlice(t testing.TB, name string, got, want []float64, maxAbs, maxRel float64) {
	t.Helper()
	if err := CloseSlice(name, got, want, maxAbs, maxRel); err != nil {
		t.Fatalf("%v", err)
	}
}
