package tolerance

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/dense"
)

// recorder captures Fatalf instead of aborting the test, so the
// assertions under test can be exercised on inputs that must fail. The
// panic stands in for testing.T's runtime.Goexit: AssertClose must not
// keep running after a Fatalf.
type recorder struct {
	testing.TB
	failed bool
	msg    string
}

type stopRecorder struct{}

func (r *recorder) Helper() {}
func (r *recorder) Fatalf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
	panic(stopRecorder{})
}

// failure runs fn against a fresh recorder and reports whether it
// Fatalf'd, plus the message.
func failure(t *testing.T, fn func(tb testing.TB)) (bool, string) {
	t.Helper()
	rec := &recorder{TB: t}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopRecorder); !ok {
					panic(r)
				}
			}
		}()
		fn(rec)
	}()
	return rec.failed, rec.msg
}

func mat(rows, cols int, data ...float64) *dense.Matrix {
	return &dense.Matrix{Rows: rows, Cols: cols, Data: data}
}

func TestAssertCloseExactMatch(t *testing.T) {
	m := mat(2, 2, 1, -2.5, 0, 3e9)
	if failed, msg := failure(t, func(tb testing.TB) {
		AssertClose(tb, "exact", m, mat(2, 2, 1, -2.5, 0, 3e9), 0, 0)
	}); failed {
		t.Fatalf("exact match failed with zero tolerance: %s", msg)
	}
}

func TestAssertCloseWithinTolerance(t *testing.T) {
	// 1e-9 off near zero passes on the absolute bound; 0.5% off at 1e9
	// passes on the relative bound despite a huge absolute delta.
	if failed, msg := failure(t, func(tb testing.TB) {
		AssertClose(tb, "abs", mat(1, 2, 1e-9, 1.005e9), mat(1, 2, 0, 1e9), 1e-8, 0.01)
	}); failed {
		t.Fatalf("within-tolerance comparison failed: %s", msg)
	}
}

func TestAssertCloseJustOutsideTolerance(t *testing.T) {
	failed, msg := failure(t, func(tb testing.TB) {
		AssertClose(tb, "outside", mat(1, 2, 1.0, 2.1), mat(1, 2, 1.0, 2.0), 0.05, 0.01)
	})
	if !failed {
		t.Fatal("element outside both bounds passed")
	}
	// The report must carry the worst element's position and values.
	for _, want := range []string{"outside", "(0,1)", "2.1", "2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("failure message %q missing %q", msg, want)
		}
	}
}

func TestAssertCloseWorstElementReported(t *testing.T) {
	// Two violations; the bigger one (index 3 → (1,1)) must be reported.
	failed, msg := failure(t, func(tb testing.TB) {
		AssertClose(tb, "worst", mat(2, 2, 0, 1.2, 0, 3.0), mat(2, 2, 0, 1.0, 0, 2.0), 0.01, 0.01)
	})
	if !failed {
		t.Fatal("violations passed")
	}
	if !strings.Contains(msg, "(1,1)") {
		t.Errorf("failure message %q does not name the worst element (1,1)", msg)
	}
}

// TestAssertCloseNaNMismatch is the regression pin for the silent-pass
// bug: a NaN in got produced a NaN delta that failed the tolerance check
// AND the worst-element comparison, so the mismatch was never reported.
func TestAssertCloseNaNMismatch(t *testing.T) {
	if failed, _ := failure(t, func(tb testing.TB) {
		AssertClose(tb, "nan-got", mat(1, 2, 1, math.NaN()), mat(1, 2, 1, 2), 10, 10)
	}); !failed {
		t.Fatal("NaN against a finite value passed silently")
	}
	if failed, _ := failure(t, func(tb testing.TB) {
		AssertClose(tb, "nan-want", mat(1, 1, 2), mat(1, 1, math.NaN()), 10, 10)
	}); !failed {
		t.Fatal("finite value against NaN passed silently")
	}
}

func TestAssertCloseNaNBothSides(t *testing.T) {
	// Matching NaNs: both paths produced the same non-value; not a
	// numerical divergence.
	if failed, msg := failure(t, func(tb testing.TB) {
		AssertClose(tb, "nan-nan", mat(1, 2, math.NaN(), 1), mat(1, 2, math.NaN(), 1), 0, 0)
	}); failed {
		t.Fatalf("matching NaNs failed: %s", msg)
	}
}

func TestAssertCloseInfHandling(t *testing.T) {
	inf := math.Inf(1)
	if failed, msg := failure(t, func(tb testing.TB) {
		AssertClose(tb, "inf-same", mat(1, 1, inf), mat(1, 1, inf), 0, 0)
	}); failed {
		t.Fatalf("matching infinities failed: %s", msg)
	}
	for name, pair := range map[string][2]float64{
		"inf vs -inf":   {inf, -inf},
		"inf vs finite": {inf, 1e300},
		"finite vs inf": {1e300, inf},
	} {
		p := pair
		if failed, _ := failure(t, func(tb testing.TB) {
			AssertClose(tb, "inf", mat(1, 1, p[0]), mat(1, 1, p[1]), math.MaxFloat64, math.MaxFloat64)
		}); !failed {
			t.Errorf("%s passed", name)
		}
	}
}

func TestAssertCloseShapeMismatch(t *testing.T) {
	failed, msg := failure(t, func(tb testing.TB) {
		AssertClose(tb, "shape", mat(2, 3, 0, 0, 0, 0, 0, 0), mat(3, 2, 0, 0, 0, 0, 0, 0), 1, 1)
	})
	if !failed {
		t.Fatal("shape mismatch passed")
	}
	if !strings.Contains(msg, "2x3") || !strings.Contains(msg, "3x2") {
		t.Errorf("failure message %q missing shapes", msg)
	}
}

func TestAssertCloseSlice(t *testing.T) {
	if failed, msg := failure(t, func(tb testing.TB) {
		AssertCloseSlice(tb, "slice", []float64{1, 2.0001}, []float64{1, 2}, 0.001, 0)
	}); failed {
		t.Fatalf("within-tolerance slice failed: %s", msg)
	}
	if failed, _ := failure(t, func(tb testing.TB) {
		AssertCloseSlice(tb, "slice-len", []float64{1}, []float64{1, 2}, 1, 1)
	}); !failed {
		t.Fatal("length mismatch passed")
	}
	if failed, _ := failure(t, func(tb testing.TB) {
		AssertCloseSlice(tb, "slice-off", []float64{1, 3}, []float64{1, 2}, 0.001, 0.001)
	}); !failed {
		t.Fatal("out-of-tolerance slice passed")
	}
}
