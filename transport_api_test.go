package cagnet

import (
	"math"
	"testing"
)

// TestTrainTCPTransportBitIdentical pins the public-API half of the
// transport-equivalence contract: Train over "tcp" must reproduce the
// in-process run's losses and output bit-for-bit on the same seed, and
// must additionally report measured wall time and wire samples.
func TestTrainTCPTransportBitIdentical(t *testing.T) {
	ds := RandomDataset(7, 5, 8, 4, 3, 11)
	for _, tc := range []struct {
		algo  string
		ranks int
		opts  TrainOptions
	}{
		{algo: "2d", ranks: 4},
		{algo: "1d", ranks: 3, opts: TrainOptions{HaloExchange: true, Partitioner: "ldg"}},
		{algo: "1.5d", ranks: 4, opts: TrainOptions{Overlap: true}},
	} {
		t.Run(tc.algo, func(t *testing.T) {
			opts := tc.opts
			opts.Algorithm, opts.Ranks, opts.Epochs, opts.Seed = tc.algo, tc.ranks, 3, 5

			inproc, err := Train(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Transport = "tcp"
			tcp, err := Train(ds, opts)
			if err != nil {
				t.Fatal(err)
			}

			for i := range inproc.Losses {
				if math.Float64bits(inproc.Losses[i]) != math.Float64bits(tcp.Losses[i]) {
					t.Fatalf("epoch %d loss differs: inproc %v, tcp %v", i, inproc.Losses[i], tcp.Losses[i])
				}
			}
			a, b := inproc.Result().Output, tcp.Result().Output
			for i := range a.Data {
				if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
					t.Fatalf("output[%d] differs: inproc %v, tcp %v", i, a.Data[i], b.Data[i])
				}
			}
			if inproc.ModeledSeconds != tcp.ModeledSeconds {
				t.Fatalf("modeled time differs across transports: inproc %v, tcp %v",
					inproc.ModeledSeconds, tcp.ModeledSeconds)
			}
			if tcp.MeasuredSeconds <= 0 {
				t.Fatal("tcp transport reported no measured wall time")
			}
			if tcp.WireSamples == 0 {
				t.Fatal("tcp transport recorded no wire samples")
			}
			if inproc.MeasuredSeconds != 0 || inproc.WireSamples != 0 {
				t.Fatal("inproc transport should not report wire measurements")
			}
		})
	}
}

// TestTrainTransportValidation covers the rejections.
func TestTrainTransportValidation(t *testing.T) {
	ds := RandomDataset(6, 4, 6, 4, 3, 12)
	if _, err := Train(ds, TrainOptions{Algorithm: "serial", Transport: "tcp", Epochs: 1}); err == nil {
		t.Fatal("serial accepted the tcp transport")
	}
	if _, err := Train(ds, TrainOptions{Algorithm: "2d", Ranks: 4, Transport: "quic", Epochs: 1}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
